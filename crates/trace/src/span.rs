//! The span stack and explain-event channel.
//!
//! A [`span`] opens a timed region; dropping the returned guard closes
//! it. Open spans nest into a tree that can be rendered as indented
//! text ([`SpanTree::render`]) or JSON ([`SpanTree::to_json`]).
//! [`explain`] attaches a human-readable derivation step to the
//! innermost open span (or to the root when none is open).
//!
//! Everything here is gated on [`crate::tracing`]: when tracing is off
//! the guards are inert and the closures passed to [`span_dyn`] /
//! [`explain`] are never called, so no formatting or allocation occurs.

use crate::json::{array, JsonObject};
use std::borrow::Cow;
use std::cell::RefCell;
use std::time::{Duration, Instant};

struct Node {
    label: Cow<'static, str>,
    started: Instant,
    elapsed: Option<Duration>,
    children: Vec<usize>,
    events: Vec<String>,
}

#[derive(Default)]
struct Collector {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    /// Events fired while no span was open.
    orphan_events: Vec<String>,
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::default();
}

/// Closes its span when dropped. Inert when tracing was off at open
/// time.
pub struct SpanGuard {
    index: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(index) = self.index {
            COLLECTOR.with(|c| {
                let mut c = c.borrow_mut();
                let node = &mut c.nodes[index];
                node.elapsed = Some(node.started.elapsed());
                // Tolerate out-of-order drops: pop through the stack
                // until this span's frame is gone.
                while let Some(top) = c.stack.pop() {
                    if top == index {
                        break;
                    }
                }
            });
        }
    }
}

fn open(label: Cow<'static, str>) -> SpanGuard {
    let index = COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let index = c.nodes.len();
        c.nodes.push(Node {
            label,
            started: Instant::now(),
            elapsed: None,
            children: Vec::new(),
            events: Vec::new(),
        });
        match c.stack.last().copied() {
            Some(parent) => c.nodes[parent].children.push(index),
            None => c.roots.push(index),
        }
        c.stack.push(index);
        index
    });
    SpanGuard { index: Some(index) }
}

/// Opens a timed span with a static label. Returns an inert guard when
/// tracing is off.
pub fn span(label: &'static str) -> SpanGuard {
    if !crate::tracing() {
        return SpanGuard { index: None };
    }
    open(Cow::Borrowed(label))
}

/// Opens a timed span whose label is built lazily — `label()` is only
/// called when tracing is on.
pub fn span_dyn(label: impl FnOnce() -> String) -> SpanGuard {
    if !crate::tracing() {
        return SpanGuard { index: None };
    }
    open(Cow::Owned(label()))
}

/// Records a derivation step on the innermost open span. The message
/// closure is only called when tracing is on.
pub fn explain(message: impl FnOnce() -> String) {
    if !crate::tracing() {
        return;
    }
    let msg = message();
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        match c.stack.last().copied() {
            Some(top) => c.nodes[top].events.push(msg),
            None => c.orphan_events.push(msg),
        }
    });
}

/// Discards all collected spans and events on this thread.
pub fn reset() {
    COLLECTOR.with(|c| *c.borrow_mut() = Collector::default());
}

/// Grafts an already-completed tree (taken from a worker thread via the
/// fork protocol) into this thread's collector: its roots become
/// children of the innermost open span, or new roots when none is open.
/// Recorded wall times are preserved verbatim.
pub(crate) fn merge_tree(tree: SpanTree) {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        fn insert(c: &mut Collector, rec: SpanRecord, parent: Option<usize>) {
            let index = c.nodes.len();
            c.nodes.push(Node {
                label: Cow::Owned(rec.label),
                started: Instant::now(), // unused: elapsed is already final
                elapsed: Some(rec.elapsed),
                children: Vec::new(),
                events: rec.events,
            });
            match parent {
                Some(p) => c.nodes[p].children.push(index),
                None => c.roots.push(index),
            }
            for ch in rec.children {
                insert(c, ch, Some(index));
            }
        }
        let top = c.stack.last().copied();
        match top {
            Some(t) => c.nodes[t].events.extend(tree.orphan_events),
            None => c.orphan_events.extend(tree.orphan_events),
        }
        for r in tree.roots {
            insert(&mut c, r, top);
        }
    });
}

/// Takes the completed span tree collected so far on this thread,
/// leaving the collector empty. Spans still open are reported with
/// their elapsed-so-far time.
pub fn take_tree() -> SpanTree {
    COLLECTOR.with(|c| {
        let collector = std::mem::take(&mut *c.borrow_mut());
        let mut tree = SpanTree {
            roots: Vec::new(),
            orphan_events: collector.orphan_events.clone(),
        };
        fn build(nodes: &[Node], index: usize) -> SpanRecord {
            let n = &nodes[index];
            SpanRecord {
                label: n.label.clone().into_owned(),
                elapsed: n.elapsed.unwrap_or_else(|| n.started.elapsed()),
                events: n.events.clone(),
                children: n.children.iter().map(|&k| build(nodes, k)).collect(),
            }
        }
        for &r in &collector.roots {
            tree.roots.push(build(&collector.nodes, r));
        }
        tree
    })
}

/// One completed span: label, wall time, derivation events, children.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// What the span measured.
    pub label: String,
    /// Wall-clock time between open and close.
    pub elapsed: Duration,
    /// Explain events recorded while this span was innermost.
    pub events: Vec<String>,
    /// Nested spans, in open order.
    pub children: Vec<SpanRecord>,
}

/// A forest of completed spans (plus events fired outside any span).
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    /// Top-level spans, in open order.
    pub roots: Vec<SpanRecord>,
    /// Explain events recorded while no span was open.
    pub orphan_events: Vec<String>,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 100_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 100_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl SpanTree {
    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty() && self.orphan_events.is_empty()
    }

    /// Renders the forest as an indented text tree, two spaces per
    /// level, events prefixed with `·`.
    pub fn render(&self) -> String {
        fn rec(out: &mut String, node: &SpanRecord, depth: usize) {
            let pad = "  ".repeat(depth);
            out.push_str(&format!(
                "{pad}{}  [{}]\n",
                node.label,
                fmt_duration(node.elapsed)
            ));
            for e in &node.events {
                out.push_str(&format!("{pad}  · {e}\n"));
            }
            for ch in &node.children {
                rec(out, ch, depth + 1);
            }
        }
        let mut out = String::new();
        for e in &self.orphan_events {
            out.push_str(&format!("· {e}\n"));
        }
        for r in &self.roots {
            rec(&mut out, r, 0);
        }
        out
    }

    /// Serializes the forest as a JSON array of span objects
    /// (`label`, `micros`, `events`, `children`).
    pub fn to_json(&self) -> String {
        fn rec(node: &SpanRecord) -> String {
            let mut o = JsonObject::new();
            o.field_str("label", &node.label);
            o.field_f64("micros", node.elapsed.as_secs_f64() * 1e6);
            o.field_raw(
                "events",
                &array(
                    node.events
                        .iter()
                        .map(|e| format!("\"{}\"", crate::json::escape(e))),
                ),
            );
            o.field_raw("children", &array(node.children.iter().map(rec)));
            o.finish()
        }
        array(self.roots.iter().map(rec))
    }
}
