//! Cross-computation sub-problem memoization.
//!
//! The counting pipeline re-derives the same pure sub-results —
//! variable eliminations (including their splinter sets), Smith normal
//! forms, Faulhaber power-sum polynomials — once per clause, and under
//! heavy similar traffic once per *request*. This module is the shared
//! engine behind memoizing them: a two-tier, type-erased store keyed by
//! canonical byte strings (produced by the `omega::intern` arena and
//! the `arith` key encoders).
//!
//! # Tiers
//!
//! * **Local tier** — a `thread_local!` `HashMap`, lock-free on the
//!   hot path. Clause-pipeline workers consult a read-only `Arc`'d
//!   snapshot of the parent's table ([`MemoSeed`]) as a middle lookup
//!   tier (planting it costs one pointer clone) and hand their *fresh*
//!   entries back through the [`crate::fork`] join ([`take_part`] /
//!   [`merge_part`]), so sequential code after a parallel drain keeps
//!   the warmth.
//! * **Shared tier** — a process-wide read-mostly `RwLock` map, off by
//!   default and enabled by the serving layer ([`enable_shared`]) so
//!   repeated sub-problems across *requests* (and across worker
//!   threads) are O(1) hits.
//!
//! # Why answers stay byte-identical
//!
//! Only *pure* computations are memoized: functions of their canonical
//! key alone, which intern no fresh variables and read no other state.
//! A hit therefore returns exactly the value a recomputation would
//! have produced, so answers are byte-identical memo-on vs memo-off
//! and at every thread count (hit *patterns* vary; values never do).
//!
//! # Why counters stay byte-identical
//!
//! Each entry stores the [`PipelineStats`] delta its original
//! computation charged (captured via [`begin_record`]). A hit
//! *replays* that delta through [`crate::add`] / [`crate::record_max`]
//! — feeding statistics, governor budgets, and any enclosing recording
//! frame — so every counter except the meta-counters
//! ([`Counter::MemoHit`] / [`Counter::MemoMiss`] / moreover
//! [`Counter::MemoBytes`]) reads exactly as if the memo did not exist.
//!
//! # When memoization stands down
//!
//! [`active`] is false — lookups and recording are skipped entirely —
//! unless the thread's memo flag is on (installed by the counting
//! entry points from `CountOptions.memo`), span/explain tracing is off
//! (a hit skips the body, and spans — unlike counters — cannot be
//! replayed from a stored delta), **and** the installed governed
//! region, if any, is memo-safe: no counter caps and no armed fault. Capped or faulted regions observe the exact *interleaving*
//! of charges, not just their totals, so the memo steps aside rather
//! than perturb trip points by replaying a delta in one lump.
//! Invalidation is not needed: keys are canonical encodings of the
//! full input, so an entry can never go stale — tables are only ever
//! dropped wholesale when a size cap is exceeded.

use crate::counters::{self, Counter, PipelineStats, NUM_COUNTERS};
use crate::govern;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Namespaces separating the key spaces of independently memoized
/// computations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoDomain {
    /// `omega::eliminate` results (dark shadow + splinter sets).
    Eliminate,
    /// `polyq::faulhaber::power_sum` polynomials.
    Faulhaber,
    /// `arith::smith::smith_normal_form` decompositions.
    Smith,
}

/// A type-erased memoized value.
pub type MemoValue = Arc<dyn Any + Send + Sync>;

#[derive(Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    domain: MemoDomain,
    bytes: Arc<[u8]>,
}

struct EntryData {
    value: MemoValue,
    /// Counter delta charged by the original computation (meta-counters
    /// zeroed), replayed on every hit.
    delta: PipelineStats,
    /// Approximate footprint (key + value) for the byte caps.
    bytes: usize,
}

type Entry = Arc<EntryData>;

/// Local-tier caps: exceeding either clears the thread's table (entries
/// are immortal otherwise — canonical keys cannot go stale).
const LOCAL_MAX_ENTRIES: usize = 1 << 15;
const LOCAL_MAX_BYTES: usize = 32 << 20;
/// Shared-tier caps (process-wide).
const SHARED_MAX_ENTRIES: usize = 1 << 16;
const SHARED_MAX_BYTES: usize = 96 << 20;

#[derive(Default)]
struct Table {
    map: HashMap<MemoKey, Entry>,
    bytes: usize,
    /// Cached [`MemoSeed`] snapshot of `map`, invalidated by any
    /// insert. A saturated table (the serving steady state) seeds
    /// every fork with one `Arc` clone instead of a map copy.
    snapshot: Option<Arc<HashMap<MemoKey, Entry>>>,
}

impl Table {
    fn insert(&mut self, key: MemoKey, entry: Entry, max_entries: usize, max_bytes: usize) {
        if self.map.len() >= max_entries || self.bytes.saturating_add(entry.bytes) > max_bytes {
            self.map.clear();
            self.bytes = 0;
        }
        if let Some(prev) = self.map.insert(key, entry.clone()) {
            self.bytes = self.bytes.saturating_sub(prev.bytes);
        }
        self.bytes = self.bytes.saturating_add(entry.bytes);
        self.snapshot = None;
    }
}

thread_local! {
    static LOCAL: RefCell<Table> = RefCell::new(Table::default());
    /// The read-only warm snapshot planted by the fork layer, consulted
    /// as a middle lookup tier (local → seed → shared). Never mutated:
    /// planting is one `Arc` clone, not a per-entry copy.
    static SEED: RefCell<Option<Arc<HashMap<MemoKey, Entry>>>> = const { RefCell::new(None) };
    /// Stack of recording frames for in-flight [`begin_record`] scopes.
    static FRAMES: RefCell<Vec<[u64; NUM_COUNTERS]>> = const { RefCell::new(Vec::new()) };
}

static SHARED_ENABLED: AtomicBool = AtomicBool::new(false);
static SHARED: OnceLock<RwLock<Table>> = OnceLock::new();

/// Process-wide totals, independent of the per-thread counters, for the
/// serving layer's Prometheus exposition.
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static SHARED_BYTES: AtomicU64 = AtomicU64::new(0);
static SHARED_ENTRIES: AtomicU64 = AtomicU64::new(0);

fn shared() -> &'static RwLock<Table> {
    SHARED.get_or_init(|| RwLock::new(Table::default()))
}

fn read_shared() -> std::sync::RwLockReadGuard<'static, Table> {
    shared().read().unwrap_or_else(|e| {
        crate::shard::note_lock_recovered();
        e.into_inner()
    })
}

fn write_shared() -> std::sync::RwLockWriteGuard<'static, Table> {
    shared().write().unwrap_or_else(|e| {
        crate::shard::note_lock_recovered();
        e.into_inner()
    })
}

/// Turns the process-wide shared tier on or off (the serving layer
/// enables it at server start so hits survive across requests and
/// worker threads). The local tier works either way.
pub fn enable_shared(on: bool) {
    SHARED_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the shared tier is enabled.
pub fn shared_enabled() -> bool {
    SHARED_ENABLED.load(Ordering::Relaxed)
}

/// Whether memoization is active on this thread right now: the memo
/// flag is installed, span/explain tracing is off (a hit skips the
/// body, so its spans could not be reproduced), *and* the governed
/// region (if any) is memo-safe. Call before building a key — key
/// construction is not free.
pub fn active() -> bool {
    crate::memo_enabled() && !crate::tracing() && govern::memo_safe()
}

/// Looks up a canonical key. On a hit the entry's counter delta is
/// replayed (see the module docs) and the value returned. On a miss
/// (or when [`active`] is false) returns `None`; genuine misses bump
/// [`Counter::MemoMiss`].
pub fn lookup(domain: MemoDomain, key_bytes: &[u8]) -> Option<MemoValue> {
    if !active() {
        return None;
    }
    let probe = MemoKey {
        domain,
        bytes: Arc::from(key_bytes),
    };
    let local_hit = LOCAL.with(|t| t.borrow().map.get(&probe).cloned());
    if let Some(entry) = local_hit {
        return Some(hit(entry));
    }
    // The planted seed is immutable and lives as long as the worker, so
    // a hit needs no promotion into the local tier.
    let seed_hit = SEED.with(|s| s.borrow().as_ref().and_then(|map| map.get(&probe).cloned()));
    if let Some(entry) = seed_hit {
        return Some(hit(entry));
    }
    if shared_enabled() {
        let shared_hit = {
            let guard = read_shared();
            guard.map.get(&probe).cloned()
        };
        if let Some(entry) = shared_hit {
            // Promote into the local tier so the next lookup is
            // lock-free.
            LOCAL.with(|t| {
                let mut t = t.borrow_mut();
                t.insert(probe, entry.clone(), LOCAL_MAX_ENTRIES, LOCAL_MAX_BYTES);
                note_local_bytes(t.bytes);
            });
            return Some(hit(entry));
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    if crate::counting() {
        counters::add_raw(Counter::MemoMiss, 1);
    }
    None
}

fn hit(entry: Entry) -> MemoValue {
    HITS.fetch_add(1, Ordering::Relaxed);
    if crate::counting() {
        counters::add_raw(Counter::MemoHit, 1);
    }
    replay(&entry.delta);
    entry.value.clone()
}

/// Replays a recorded counter delta as if the computation had run:
/// counts are added and gauges raised through the governed/recorded
/// paths. Skipped entirely when nothing is observing.
fn replay(delta: &PipelineStats) {
    if !crate::any_observer() {
        return;
    }
    for c in Counter::ALL {
        if matches!(c, Counter::MemoHit | Counter::MemoMiss | Counter::MemoBytes) {
            continue;
        }
        let v = delta.get(c);
        if v == 0 {
            continue;
        }
        if c.is_gauge() {
            crate::record_max(c, v);
        } else {
            crate::add(c, v);
        }
    }
}

/// An in-flight capture of the counter delta charged by a computation
/// about to be memoized. Dropping without [`finish`](Self::finish)
/// (e.g. on unwind) discards the frame.
pub struct RecordGuard {
    depth: usize,
}

/// Opens a recording frame: until the guard is finished or dropped,
/// every [`crate::add`] / [`crate::record_max`] on this thread also
/// accumulates into the frame (including deltas replayed by nested
/// hits).
pub fn begin_record() -> RecordGuard {
    let depth = FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        f.push([0u64; NUM_COUNTERS]);
        f.len()
    });
    crate::set_recording(true);
    RecordGuard { depth }
}

impl RecordGuard {
    /// Closes the frame and returns the delta it captured.
    pub fn finish(self) -> PipelineStats {
        let values = FRAMES.with(|f| {
            let mut f = f.borrow_mut();
            debug_assert_eq!(f.len(), self.depth, "unbalanced memo recording frames");
            let values = f.pop().unwrap_or([0u64; NUM_COUNTERS]);
            if f.is_empty() {
                crate::set_recording(false);
            }
            values
        });
        std::mem::forget(self);
        PipelineStats::from_raw(values)
    }
}

impl Drop for RecordGuard {
    fn drop(&mut self) {
        FRAMES.with(|f| {
            let mut f = f.borrow_mut();
            f.truncate(self.depth.saturating_sub(1));
            if f.is_empty() {
                crate::set_recording(false);
            }
        });
    }
}

/// Feeds a running-count charge into every open recording frame.
/// Called from [`crate::add`] when the recording flag is set.
pub(crate) fn on_add(counter: Counter, n: u64) {
    FRAMES.with(|f| {
        for frame in f.borrow_mut().iter_mut() {
            let cell = &mut frame[counter as usize];
            *cell = cell.saturating_add(n);
        }
    });
}

/// Feeds a gauge observation into every open recording frame.
pub(crate) fn on_gauge(counter: Counter, value: u64) {
    FRAMES.with(|f| {
        for frame in f.borrow_mut().iter_mut() {
            let cell = &mut frame[counter as usize];
            if value > *cell {
                *cell = value;
            }
        }
    });
}

/// Records a computed value under its canonical key, with the counter
/// delta captured by [`begin_record`] and an approximate value
/// footprint in bytes. Inserts into the local tier and, when enabled,
/// the shared tier.
pub fn record(
    domain: MemoDomain,
    key_bytes: &[u8],
    value: MemoValue,
    mut delta: PipelineStats,
    value_bytes: usize,
) {
    if !active() {
        return;
    }
    // The meta-counters must never be replayed.
    delta = delta.without_memo_meta();
    let key = MemoKey {
        domain,
        bytes: Arc::from(key_bytes),
    };
    let entry: Entry = Arc::new(EntryData {
        value,
        delta,
        bytes: key_bytes.len() + value_bytes + 128,
    });
    LOCAL.with(|t| {
        let mut t = t.borrow_mut();
        t.insert(
            key.clone(),
            entry.clone(),
            LOCAL_MAX_ENTRIES,
            LOCAL_MAX_BYTES,
        );
        note_local_bytes(t.bytes);
    });
    if shared_enabled() {
        let mut guard = write_shared();
        guard.insert(key, entry, SHARED_MAX_ENTRIES, SHARED_MAX_BYTES);
        SHARED_BYTES.store(guard.bytes as u64, Ordering::Relaxed);
        SHARED_ENTRIES.store(guard.map.len() as u64, Ordering::Relaxed);
    }
}

fn note_local_bytes(bytes: usize) {
    if crate::counting() {
        counters::max_raw(Counter::MemoBytes, bytes as u64);
    }
}

/// A read-only snapshot of a thread's warm entries, handed to forked
/// workers so they start warm. The snapshot is one `Arc`'d map built
/// per fork (entries are `Arc`-shared, so building it is refcount
/// traffic, not data copies); planting it on a worker is a single
/// pointer clone — workers consult it as a middle lookup tier instead
/// of copying it into their own tables.
#[derive(Clone)]
pub struct MemoSeed {
    entries: Arc<HashMap<MemoKey, Entry>>,
}

impl std::fmt::Debug for MemoSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoSeed")
            .field("entries", &self.entries.len())
            .finish()
    }
}

/// Snapshots the current thread's warm entries (its local tier plus
/// any seed it was itself planted with, so nested forks inherit the
/// full view) for seeding workers. Returns `None` when there is
/// nothing warm or memoization is off.
pub fn seed() -> Option<MemoSeed> {
    if !crate::memo_enabled() {
        return None;
    }
    let inherited = SEED.with(|s| s.borrow().clone());
    LOCAL.with(|t| {
        let mut t = t.borrow_mut();
        if t.map.is_empty() {
            return inherited.map(|entries| MemoSeed { entries });
        }
        if let Some(inh) = &inherited {
            // Nested fork with a warm local tier on top of an inherited
            // seed: merge the two views (rare — only inner forks hit
            // this, and only when the worker has learned fresh entries).
            let mut map = t.map.clone();
            for (k, v) in inh.iter() {
                map.entry(k.clone()).or_insert_with(|| v.clone());
            }
            return Some(MemoSeed {
                entries: Arc::new(map),
            });
        }
        if t.snapshot.is_none() {
            t.snapshot = Some(Arc::new(t.map.clone()));
        }
        let entries = t.snapshot.clone().expect("snapshot just filled");
        Some(MemoSeed { entries })
    })
}

/// Installs a seed as this thread's middle lookup tier — a single
/// `Arc` clone, regardless of how warm the parent was.
pub fn plant(seed: &MemoSeed) {
    SEED.with(|s| *s.borrow_mut() = Some(seed.entries.clone()));
}

/// What a finishing worker hands back across the fork join: its whole
/// local tier (the thread is about to die, so nothing is lost).
pub struct MemoPart {
    entries: Vec<(MemoKey, Entry)>,
}

impl std::fmt::Debug for MemoPart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoPart")
            .field("entries", &self.entries.len())
            .finish()
    }
}

/// Drains this thread's local tier into a `Send`-able part. Returns
/// `None` when empty.
pub fn take_part() -> Option<MemoPart> {
    // Drop the planted seed: everything in it came from the parent, so
    // handing it back would be pure duplicate-merge work.
    SEED.with(|s| s.borrow_mut().take());
    LOCAL.with(|t| {
        let mut t = t.borrow_mut();
        if t.map.is_empty() {
            return None;
        }
        t.bytes = 0;
        t.snapshot = None;
        Some(MemoPart {
            entries: t.map.drain().collect(),
        })
    })
}

/// Merges a worker's part into the current thread's local tier
/// (insert-if-absent: the parent's own entries win, which is
/// immaterial — equal keys hold equal values).
pub fn merge_part(part: MemoPart) {
    LOCAL.with(|t| {
        let mut t = t.borrow_mut();
        for (k, v) in part.entries {
            if !t.map.contains_key(&k) {
                t.insert(k, v, LOCAL_MAX_ENTRIES, LOCAL_MAX_BYTES);
            }
        }
        note_local_bytes(t.bytes);
    });
}

/// Process-wide memo statistics for the serving layer's metrics verb.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoStats {
    /// Total hits across all threads since process start.
    pub hits: u64,
    /// Total misses across all threads since process start.
    pub misses: u64,
    /// Entries currently resident in the shared tier.
    pub shared_entries: u64,
    /// Approximate bytes currently resident in the shared tier.
    pub shared_bytes: u64,
}

/// Reads the process-wide memo statistics.
pub fn stats() -> MemoStats {
    MemoStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        shared_entries: SHARED_ENTRIES.load(Ordering::Relaxed),
        shared_bytes: SHARED_BYTES.load(Ordering::Relaxed),
    }
}

/// Renders [`stats`] as Prometheus text exposition lines (HELP/TYPE
/// and a value line per family, no `# EOF` terminator). Shared by the
/// serving layer's `metrics` verb and the calculator's `--metrics`.
pub fn prometheus_text() -> String {
    let memo = stats();
    let mut out = String::new();
    out.push_str("# HELP presburger_memo_hits_total Sub-problem memoization hits (all tiers, process-wide).\n");
    out.push_str("# TYPE presburger_memo_hits_total counter\n");
    out.push_str(&format!("presburger_memo_hits_total {}\n", memo.hits));
    out.push_str(
        "# HELP presburger_memo_misses_total Sub-problem memoization misses (process-wide).\n",
    );
    out.push_str("# TYPE presburger_memo_misses_total counter\n");
    out.push_str(&format!("presburger_memo_misses_total {}\n", memo.misses));
    out.push_str(
        "# HELP presburger_memo_shared_entries Entries resident in the shared memo tier.\n",
    );
    out.push_str("# TYPE presburger_memo_shared_entries gauge\n");
    out.push_str(&format!(
        "presburger_memo_shared_entries {}\n",
        memo.shared_entries
    ));
    out.push_str(
        "# HELP presburger_memo_shared_bytes Approximate bytes resident in the shared memo tier.\n",
    );
    out.push_str("# TYPE presburger_memo_shared_bytes gauge\n");
    out.push_str(&format!(
        "presburger_memo_shared_bytes {}\n",
        memo.shared_bytes
    ));
    out
}

/// Empties this thread's local tier (benchmarks use this to measure
/// cold vs warm runs).
pub fn clear_local() {
    SEED.with(|s| s.borrow_mut().take());
    LOCAL.with(|t| {
        let mut t = t.borrow_mut();
        t.map.clear();
        t.bytes = 0;
        t.snapshot = None;
    });
}

/// Empties the shared tier.
pub fn clear_shared() {
    let mut guard = write_shared();
    guard.map.clear();
    guard.bytes = 0;
    SHARED_BYTES.store(0, Ordering::Relaxed);
    SHARED_ENTRIES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_memo<R>(f: impl FnOnce() -> R) -> R {
        clear_local();
        crate::set_memo_enabled(true);
        let r = f();
        crate::set_memo_enabled(false);
        clear_local();
        r
    }

    #[test]
    fn miss_then_hit_returns_identical_value() {
        with_memo(|| {
            assert!(lookup(MemoDomain::Smith, b"k1").is_none());
            let guard = begin_record();
            crate::add(Counter::SmithNormalFormCalls, 1); // not collected (counting off)
            let delta = guard.finish();
            record(MemoDomain::Smith, b"k1", Arc::new(42u64), delta, 8);
            let v = lookup(MemoDomain::Smith, b"k1").expect("hit");
            assert_eq!(*v.downcast::<u64>().unwrap(), 42);
        });
    }

    #[test]
    fn hit_replays_recorded_delta() {
        with_memo(|| {
            crate::enable_counters(true);
            crate::reset();
            // Record a computation charging 3 gist calls + a gauge.
            let guard = begin_record();
            crate::add(Counter::GistCalls, 3);
            crate::record_max(Counter::MaxCoeffBits, 99);
            let delta = guard.finish();
            record(MemoDomain::Eliminate, b"e", Arc::new(()), delta, 0);
            let before = crate::snapshot();
            let _ = lookup(MemoDomain::Eliminate, b"e").expect("hit");
            let d = crate::snapshot().delta(&before);
            assert_eq!(d.get(Counter::GistCalls), 3, "replayed count");
            assert_eq!(d.get(Counter::MaxCoeffBits), 99, "replayed gauge");
            assert_eq!(d.get(Counter::MemoHit), 1);
            assert_eq!(d.get(Counter::MemoMiss), 0);
            crate::enable_counters(false);
        });
    }

    #[test]
    fn recording_captures_nested_hits() {
        with_memo(|| {
            let guard = begin_record();
            crate::add(Counter::GistCalls, 2);
            let inner = guard.finish();
            record(MemoDomain::Faulhaber, b"f", Arc::new(1u8), inner, 1);
            // An outer recording must see the inner hit's replayed delta.
            let outer = begin_record();
            let _ = lookup(MemoDomain::Faulhaber, b"f").expect("hit");
            crate::add(Counter::GistCalls, 1);
            let delta = outer.finish();
            assert_eq!(delta.get(Counter::GistCalls), 3);
        });
    }

    #[test]
    fn inactive_without_flag_and_inside_capped_region() {
        clear_local();
        crate::set_memo_enabled(false);
        assert!(!active(), "memo flag off");
        crate::set_memo_enabled(true);
        assert!(active(), "flag on, ungoverned");
        let mut limits = govern::Limits::default();
        limits.caps[Counter::GistCalls as usize] = Some(10);
        {
            let _g = govern::install(limits);
            assert!(!active(), "capped region is not memo-safe");
        }
        let limits = govern::Limits {
            deadline: Some((
                std::time::Instant::now() + std::time::Duration::from_secs(60),
                60_000,
            )),
            ..govern::Limits::default()
        };
        {
            let _g = govern::install(limits);
            assert!(active(), "deadline-only region is memo-safe");
        }
        crate::set_memo_enabled(false);
    }

    #[test]
    fn fork_part_round_trip() {
        with_memo(|| {
            let guard = begin_record();
            let delta = guard.finish();
            record(MemoDomain::Smith, b"worker-entry", Arc::new(7i32), delta, 4);
            let part = take_part().expect("non-empty");
            assert!(
                lookup(MemoDomain::Smith, b"worker-entry").is_none(),
                "drained"
            );
            merge_part(part);
            let v = lookup(MemoDomain::Smith, b"worker-entry").expect("merged back");
            assert_eq!(*v.downcast::<i32>().unwrap(), 7);
        });
    }

    #[test]
    fn seed_plants_parent_entries() {
        with_memo(|| {
            let guard = begin_record();
            let delta = guard.finish();
            record(MemoDomain::Faulhaber, b"warm", Arc::new(5u8), delta, 1);
            let seed = seed().expect("warm table");
            clear_local();
            assert!(lookup(MemoDomain::Faulhaber, b"warm").is_none());
            plant(&seed);
            assert!(lookup(MemoDomain::Faulhaber, b"warm").is_some());
        });
    }

    #[test]
    fn shared_tier_promotes_to_local() {
        with_memo(|| {
            clear_shared();
            enable_shared(true);
            let guard = begin_record();
            let delta = guard.finish();
            record(MemoDomain::Smith, b"cross", Arc::new(9u64), delta, 8);
            clear_local(); // simulate a different request/thread
            let v = lookup(MemoDomain::Smith, b"cross").expect("shared hit");
            assert_eq!(*v.downcast::<u64>().unwrap(), 9);
            enable_shared(false);
            clear_shared();
        });
    }
}
