//! Request-scoped serving metrics: log-bucketed histograms and labeled
//! counter families, shareable across threads, plus Prometheus text
//! exposition.
//!
//! The [`counters`](crate::counters) registry is *thread-local* and
//! meters one computation at a time; a serving pipeline needs the dual:
//! process-wide aggregates that many worker threads record into
//! concurrently, distribution-shaped (per-request cost spans three
//! orders of magnitude — see `BENCH_counters.json`: E6 at 0.17 ms vs
//! E10 at 423 ms), and cheap enough to leave on in production. This
//! module provides:
//!
//! - [`Histogram`]: a fixed-allocation log-bucketed histogram with
//!   lock-free recording (relaxed atomic adds) and an owned
//!   [`HistogramSnapshot`] whose merge is associative and commutative
//!   bucket-for-bucket — the same algebra as the fork-counter merge.
//! - [`RequestMetrics`]: the serving pipeline's registry — request
//!   latency, queue wait, govern overhead, and splinters-per-request
//!   histograms plus a `{verb, outcome}` labeled request-counter
//!   family — rendered as Prometheus text by
//!   [`RequestMetrics::render_prometheus`].
//!
//! # Bucket scheme
//!
//! Buckets are powers of two: bucket `i` holds values in
//! `(2^(i-1), 2^i]` (bucket 0 holds `0..=1`), with finite upper bounds
//! `1, 2, 4, …, 2^30` and a final `+Inf` overflow bucket —
//! [`NUM_BUCKETS`] (`32`) buckets in all, so a histogram is one cache
//! line of hot counters plus `sum`/`count`. In microseconds the finite
//! range spans 1 µs to ~17.9 min, comfortably past any serving
//! deadline. Percentiles interpolate linearly inside a bucket
//! ([`HistogramSnapshot::percentile`]), so the worst-case relative
//! error is the bucket width (a factor of two) and in practice far
//! less; the previous sorted-60-sample p99 had *unbounded* error under
//! multimodal load.
//!
//! When a registry is disabled ([`RequestMetrics::set_enabled`]) every
//! record is one relaxed atomic load — gated below 5% of E3 by
//! `overhead_smoke` alongside the counter hooks.

use crate::counters::PipelineStats;
use crate::json::JsonObject;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Histogram bucket count: 31 finite power-of-two bounds plus the
/// `+Inf` overflow bucket.
pub const NUM_BUCKETS: usize = 32;

/// The inclusive upper bound of finite bucket `i` (`2^i`), or `None`
/// for the final overflow bucket.
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 < NUM_BUCKETS {
        Some(1u64 << i)
    } else {
        None
    }
}

/// The Prometheus `le` label for bucket `i`: the decimal bound, or
/// `+Inf` for the overflow bucket.
pub fn bucket_le_label(i: usize) -> String {
    match bucket_bound(i) {
        Some(b) => b.to_string(),
        None => "+Inf".to_string(),
    }
}

/// The bucket a value lands in: the smallest `i` with `value <= 2^i`,
/// clamped to the overflow bucket.
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        let bits = (64 - (value - 1).leading_zeros()) as usize;
        bits.min(NUM_BUCKETS - 1)
    }
}

/// A fixed-allocation log-bucketed histogram with lock-free recording.
///
/// All updates are relaxed atomic adds — concurrent recorders never
/// contend on a lock, and a torn read across `buckets`/`sum`/`count`
/// only skews a snapshot by in-flight events (snapshots are monotone,
/// never corrupt).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An owned snapshot of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (v, b) in buckets.iter_mut().zip(&self.buckets) {
            *v = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// An owned histogram snapshot: per-bucket counts plus `sum`/`count`.
///
/// [`merge`](HistogramSnapshot::merge) is element-wise addition, so it
/// is associative and commutative bucket-for-bucket (property-tested in
/// this module) — snapshots from many workers or phases can be folded
/// in any order, exactly like fork counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Records one observation into the owned snapshot (for offline
    /// aggregation in harnesses).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.sum = self.sum.saturating_add(value);
        self.count += 1;
    }

    /// The element-wise sum of two snapshots.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        for (v, o) in out.buckets.iter_mut().zip(&other.buckets) {
            *v = v.saturating_add(*o);
        }
        out.sum = out.sum.saturating_add(other.sum);
        out.count = out.count.saturating_add(other.count);
        out
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in `[0, 1]`), linearly interpolated
    /// inside the containing bucket. Returns 0 when empty; observations
    /// in the overflow bucket report the largest finite bound.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = bucket_bound(i).unwrap_or(lo);
                let frac = (target - cumulative) as f64 / n as f64;
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
            cumulative += n;
        }
        bucket_bound(NUM_BUCKETS - 2).unwrap_or(u64::MAX)
    }

    /// `{"count":…,"sum":…,"p50_us":…,…,"buckets":[nonzero (le,n) pairs]}`
    /// — the compact form recorded in `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("count", self.count)
            .field_u64("sum", self.sum)
            .field_u64("p50", self.percentile(0.50))
            .field_u64("p90", self.percentile(0.90))
            .field_u64("p99", self.percentile(0.99))
            .field_u64("p999", self.percentile(0.999));
        let nonzero: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| format!("[\"{}\",{n}]", bucket_le_label(i)))
            .collect();
        obj.field_raw("buckets", &crate::json::array(nonzero));
        obj.finish()
    }
}

/// The request verb dimension of the labeled metric families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqVerb {
    /// A `count` request.
    Count = 0,
    /// A `sum` request.
    Sum = 1,
}

/// Number of verb labels.
pub const NUM_VERBS: usize = 2;

impl ReqVerb {
    /// Every verb, in stable exposition order.
    pub const ALL: [ReqVerb; NUM_VERBS] = [ReqVerb::Count, ReqVerb::Sum];

    /// The stable label value used in exposition.
    pub fn label(self) -> &'static str {
        match self {
            ReqVerb::Count => "count",
            ReqVerb::Sum => "sum",
        }
    }
}

/// The request outcome dimension of the labeled metric families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqOutcome {
    /// Answered exactly (`OK … exact`).
    Ok = 0,
    /// Answered with §4.6 bounds (`OK … bounded`).
    Bounded = 1,
    /// Refused by admission control (`SHED`).
    Shed = 2,
    /// Answered with an error (`ERR`).
    Err = 3,
    /// Served from the result cache.
    CacheHit = 4,
}

/// Number of outcome labels.
pub const NUM_OUTCOMES: usize = 5;

impl ReqOutcome {
    /// Every outcome, in stable exposition order.
    pub const ALL: [ReqOutcome; NUM_OUTCOMES] = [
        ReqOutcome::Ok,
        ReqOutcome::Bounded,
        ReqOutcome::Shed,
        ReqOutcome::Err,
        ReqOutcome::CacheHit,
    ];

    /// The stable label value used in exposition.
    pub fn label(self) -> &'static str {
        match self {
            ReqOutcome::Ok => "ok",
            ReqOutcome::Bounded => "bounded",
            ReqOutcome::Shed => "shed",
            ReqOutcome::Err => "err",
            ReqOutcome::CacheHit => "cache_hit",
        }
    }
}

/// The priority-lane dimension of the admission metric families (see
/// `serve::admission`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqLane {
    /// Latency-sensitive traffic.
    Interactive = 0,
    /// The default lane.
    Batch = 1,
    /// Best-effort traffic.
    Background = 2,
}

/// Number of lane labels.
pub const NUM_LANES: usize = 3;

impl ReqLane {
    /// Every lane, in stable exposition order (priority order).
    pub const ALL: [ReqLane; NUM_LANES] =
        [ReqLane::Interactive, ReqLane::Batch, ReqLane::Background];

    /// The stable label value used in exposition.
    pub fn label(self) -> &'static str {
        match self {
            ReqLane::Interactive => "interactive",
            ReqLane::Batch => "batch",
            ReqLane::Background => "background",
        }
    }
}

/// The decision dimension of the admission counter family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admitted to the worker queue.
    Admit = 0,
    /// Shed by the per-client token-bucket quota.
    ShedQuota = 1,
    /// Shed because the bounded queue was full.
    ShedQueue = 2,
    /// Shed because the server was draining.
    ShedDrain = 3,
    /// Deadline elapsed in queue; answered with §4.6 bounds instead of
    /// burning a worker.
    Evicted = 4,
}

/// Number of admission-decision labels.
pub const NUM_DECISIONS: usize = 5;

impl AdmitDecision {
    /// Every decision, in stable exposition order.
    pub const ALL: [AdmitDecision; NUM_DECISIONS] = [
        AdmitDecision::Admit,
        AdmitDecision::ShedQuota,
        AdmitDecision::ShedQueue,
        AdmitDecision::ShedDrain,
        AdmitDecision::Evicted,
    ];

    /// The stable label value used in exposition.
    pub fn label(self) -> &'static str {
        match self {
            AdmitDecision::Admit => "admit",
            AdmitDecision::ShedQuota => "shed_quota",
            AdmitDecision::ShedQueue => "shed_queue",
            AdmitDecision::ShedDrain => "shed_drain",
            AdmitDecision::Evicted => "evicted",
        }
    }
}

/// The wire-codec dimension of the per-codec request counter family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqCodec {
    /// Newline-delimited text protocol.
    Text = 0,
    /// Length-prefixed binary protocol (`serve::wire`).
    Binary = 1,
}

/// Number of codec labels.
pub const NUM_CODECS: usize = 2;

impl ReqCodec {
    /// Every codec, in stable exposition order.
    pub const ALL: [ReqCodec; NUM_CODECS] = [ReqCodec::Text, ReqCodec::Binary];

    /// The stable label value used in exposition.
    pub fn label(self) -> &'static str {
        match self {
            ReqCodec::Text => "text",
            ReqCodec::Binary => "binary",
        }
    }
}

/// One request's aggregate measurements, recorded in a single call so
/// the disabled path is one atomic load however many series exist.
#[derive(Clone, Copy, Debug)]
pub struct RequestObservation {
    /// The request verb.
    pub verb: ReqVerb,
    /// How the request was answered.
    pub outcome: ReqOutcome,
    /// The priority lane the request rode (`Batch` when no `prio=`
    /// override was given).
    pub lane: ReqLane,
    /// End-to-end latency (worker pop to reply ready), microseconds.
    pub duration_us: u64,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait_us: u64,
    /// Serving overhead: latency minus the governed engine run
    /// (parsing, cache, breaker, rendering).
    pub govern_overhead_us: u64,
    /// Splinters the request generated (`None` when counter deltas are
    /// not captured — the splinter histogram is skipped, not zeroed).
    pub splinters: Option<u64>,
}

/// The serving pipeline's metric registry: labeled request counters and
/// the four request-scoped histograms, all lock-free to record.
#[derive(Debug)]
pub struct RequestMetrics {
    enabled: AtomicBool,
    requests: [[AtomicU64; NUM_OUTCOMES]; NUM_VERBS],
    duration_us: [[Histogram; NUM_OUTCOMES]; NUM_VERBS],
    queue_wait_us: [Histogram; NUM_VERBS],
    govern_overhead_us: [Histogram; NUM_VERBS],
    splinters: [Histogram; NUM_VERBS],
    codec_requests: [AtomicU64; NUM_CODECS],
    batch_size: Histogram,
    events_logged: AtomicU64,
    events_dropped: AtomicU64,
    flight_records: AtomicU64,
    admission: [[AtomicU64; NUM_DECISIONS]; NUM_LANES],
    lane_queue_wait_us: [Histogram; NUM_LANES],
    lane_service_us: [Histogram; NUM_LANES],
}

impl RequestMetrics {
    /// A fresh registry.
    pub fn new(enabled: bool) -> RequestMetrics {
        RequestMetrics {
            enabled: AtomicBool::new(enabled),
            requests: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            duration_us: std::array::from_fn(|_| std::array::from_fn(|_| Histogram::new())),
            queue_wait_us: std::array::from_fn(|_| Histogram::new()),
            govern_overhead_us: std::array::from_fn(|_| Histogram::new()),
            splinters: std::array::from_fn(|_| Histogram::new()),
            codec_requests: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_size: Histogram::new(),
            events_logged: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            flight_records: AtomicU64::new(0),
            admission: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            lane_queue_wait_us: std::array::from_fn(|_| Histogram::new()),
            lane_service_us: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Turns recording on or off. The disabled path of every hook is a
    /// single relaxed atomic load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the registry is recording.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one completed request across every series it belongs to.
    /// A no-op (one atomic load) when disabled.
    #[inline]
    pub fn observe_request(&self, obs: RequestObservation) {
        if !self.enabled() {
            return;
        }
        let (v, o) = (obs.verb as usize, obs.outcome as usize);
        self.requests[v][o].fetch_add(1, Ordering::Relaxed);
        self.duration_us[v][o].record(obs.duration_us);
        self.queue_wait_us[v].record(obs.queue_wait_us);
        self.govern_overhead_us[v].record(obs.govern_overhead_us);
        if let Some(s) = obs.splinters {
            self.splinters[v].record(s);
        }
        let l = obs.lane as usize;
        self.lane_queue_wait_us[l].record(obs.queue_wait_us);
        self.lane_service_us[l].record(obs.duration_us);
    }

    /// Counts one admission decision in the `{lane, decision}` family.
    /// A no-op when disabled.
    #[inline]
    pub fn observe_admission(&self, lane: ReqLane, decision: AdmitDecision) {
        if !self.enabled() {
            return;
        }
        self.admission[lane as usize][decision as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// The `{lane, decision}` admission count.
    pub fn admission_total(&self, lane: ReqLane, decision: AdmitDecision) -> u64 {
        self.admission[lane as usize][decision as usize].load(Ordering::Relaxed)
    }

    /// A snapshot of one lane's queue-wait histogram.
    pub fn lane_queue_wait(&self, lane: ReqLane) -> HistogramSnapshot {
        self.lane_queue_wait_us[lane as usize].snapshot()
    }

    /// A snapshot of one lane's service-time (worker pop to reply)
    /// histogram — the load-derived backpressure hint reads its mean.
    pub fn lane_service(&self, lane: ReqLane) -> HistogramSnapshot {
        self.lane_service_us[lane as usize].snapshot()
    }

    /// Records a shed request (it never reached a worker, so only the
    /// counter family fires). A no-op when disabled.
    #[inline]
    pub fn observe_shed(&self, verb: ReqVerb) {
        if !self.enabled() {
            return;
        }
        self.requests[verb as usize][ReqOutcome::Shed as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` inner requests received on `codec` (a batch frame of
    /// `k` requests counts `k`). A no-op when disabled.
    #[inline]
    pub fn observe_codec_requests(&self, codec: ReqCodec, n: u64) {
        if !self.enabled() {
            return;
        }
        self.codec_requests[codec as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one binary batch frame's inner-request count. A no-op
    /// when disabled.
    #[inline]
    pub fn observe_batch(&self, size: u64) {
        if !self.enabled() {
            return;
        }
        self.batch_size.record(size);
    }

    /// Inner requests received on `codec` so far.
    pub fn codec_requests(&self, codec: ReqCodec) -> u64 {
        self.codec_requests[codec as usize].load(Ordering::Relaxed)
    }

    /// A snapshot of the batch-size histogram.
    pub fn batch_size(&self) -> HistogramSnapshot {
        self.batch_size.snapshot()
    }

    /// Counts a structured event written to the JSONL event log.
    pub fn bump_events_logged(&self) {
        self.events_logged.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a structured event dropped on writer backpressure.
    pub fn bump_events_dropped(&self) {
        self.events_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Events dropped on writer backpressure so far.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// Counts a slow/governor-tripped request captured by the flight
    /// recorder.
    pub fn bump_flight_records(&self) {
        self.flight_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests captured by the flight recorder so far.
    pub fn flight_records(&self) -> u64 {
        self.flight_records.load(Ordering::Relaxed)
    }

    /// The `{verb, outcome}` request count.
    pub fn requests(&self, verb: ReqVerb, outcome: ReqOutcome) -> u64 {
        self.requests[verb as usize][outcome as usize].load(Ordering::Relaxed)
    }

    /// A snapshot of one `{verb, outcome}` latency histogram.
    pub fn duration(&self, verb: ReqVerb, outcome: ReqOutcome) -> HistogramSnapshot {
        self.duration_us[verb as usize][outcome as usize].snapshot()
    }

    /// Latency merged across outcomes for one verb, or across
    /// everything (`None`) — the series percentile queries are derived
    /// from.
    pub fn duration_merged(&self, verb: Option<ReqVerb>) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for v in ReqVerb::ALL {
            if verb.is_some_and(|want| want != v) {
                continue;
            }
            for o in ReqOutcome::ALL {
                out = out.merge(&self.duration(v, o));
            }
        }
        out
    }

    /// A snapshot of one verb's queue-wait histogram.
    pub fn queue_wait(&self, verb: ReqVerb) -> HistogramSnapshot {
        self.queue_wait_us[verb as usize].snapshot()
    }

    /// Queue wait merged across verbs.
    pub fn queue_wait_merged(&self) -> HistogramSnapshot {
        ReqVerb::ALL
            .iter()
            .fold(HistogramSnapshot::default(), |acc, &v| {
                acc.merge(&self.queue_wait(v))
            })
    }

    /// A snapshot of one verb's govern-overhead histogram.
    pub fn govern_overhead(&self, verb: ReqVerb) -> HistogramSnapshot {
        self.govern_overhead_us[verb as usize].snapshot()
    }

    /// A snapshot of one verb's splinters-per-request histogram.
    pub fn splinters(&self, verb: ReqVerb) -> HistogramSnapshot {
        self.splinters[verb as usize].snapshot()
    }

    /// Renders the whole registry as Prometheus text exposition.
    ///
    /// Label ordering is stable: verbs then outcomes in declaration
    /// order, buckets ascending, `+Inf` last, `_sum` before `_count`.
    /// Zero-valued counter series and empty histogram series are
    /// omitted (so a scrape grows as verbs/outcomes first occur), but
    /// a non-empty histogram series always renders all `NUM_BUCKETS`
    /// cumulative bucket lines — the golden exposition test pins this.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP presburger_requests_total Requests by verb and outcome.\n");
        out.push_str("# TYPE presburger_requests_total counter\n");
        for v in ReqVerb::ALL {
            for o in ReqOutcome::ALL {
                let n = self.requests(v, o);
                if n > 0 {
                    out.push_str(&format!(
                        "presburger_requests_total{{verb=\"{}\",outcome=\"{}\"}} {n}\n",
                        v.label(),
                        o.label()
                    ));
                }
            }
        }
        out.push_str(
            "# HELP presburger_request_duration_us Request latency (worker pop to reply), \
             microseconds.\n# TYPE presburger_request_duration_us histogram\n",
        );
        for v in ReqVerb::ALL {
            for o in ReqOutcome::ALL {
                let labels = format!("verb=\"{}\",outcome=\"{}\"", v.label(), o.label());
                render_histogram_series(
                    &mut out,
                    "presburger_request_duration_us",
                    &labels,
                    &self.duration(v, o),
                );
            }
        }
        out.push_str(
            "# HELP presburger_queue_wait_us Admission-queue wait before a worker picked the \
             request up, microseconds.\n# TYPE presburger_queue_wait_us histogram\n",
        );
        for v in ReqVerb::ALL {
            let labels = format!("verb=\"{}\"", v.label());
            render_histogram_series(
                &mut out,
                "presburger_queue_wait_us",
                &labels,
                &self.queue_wait(v),
            );
        }
        out.push_str(
            "# HELP presburger_govern_overhead_us Serving overhead outside the governed engine \
             run (parse, cache, breaker, render), microseconds.\n\
             # TYPE presburger_govern_overhead_us histogram\n",
        );
        for v in ReqVerb::ALL {
            let labels = format!("verb=\"{}\"", v.label());
            render_histogram_series(
                &mut out,
                "presburger_govern_overhead_us",
                &labels,
                &self.govern_overhead(v),
            );
        }
        out.push_str(
            "# HELP presburger_request_splinters Splinter clauses generated per request \
             (counter-delta attribution).\n# TYPE presburger_request_splinters histogram\n",
        );
        for v in ReqVerb::ALL {
            let labels = format!("verb=\"{}\"", v.label());
            render_histogram_series(
                &mut out,
                "presburger_request_splinters",
                &labels,
                &self.splinters(v),
            );
        }
        out.push_str(
            "# HELP presburger_codec_requests_total Inner requests received per wire codec.\n\
             # TYPE presburger_codec_requests_total counter\n",
        );
        for c in ReqCodec::ALL {
            let n = self.codec_requests(c);
            if n > 0 {
                out.push_str(&format!(
                    "presburger_codec_requests_total{{codec=\"{}\"}} {n}\n",
                    c.label()
                ));
            }
        }
        out.push_str(
            "# HELP presburger_batch_size Inner requests per binary batch frame.\n\
             # TYPE presburger_batch_size histogram\n",
        );
        render_histogram_series(&mut out, "presburger_batch_size", "", &self.batch_size());
        out.push_str(
            "# HELP presburger_events_logged_total Structured events written to the JSONL event \
             log.\n# TYPE presburger_events_logged_total counter\n",
        );
        out.push_str(&format!(
            "presburger_events_logged_total {}\n",
            self.events_logged.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP presburger_events_dropped_total Structured events dropped on event-log \
             backpressure (the writer never blocks a worker).\n\
             # TYPE presburger_events_dropped_total counter\n",
        );
        out.push_str(&format!(
            "presburger_events_dropped_total {}\n",
            self.events_dropped()
        ));
        out.push_str(
            "# HELP presburger_flight_records_total Slow or governor-tripped requests captured \
             by the flight recorder.\n# TYPE presburger_flight_records_total counter\n",
        );
        out.push_str(&format!(
            "presburger_flight_records_total {}\n",
            self.flight_records()
        ));
        out.push_str(
            "# HELP presburger_admission_total Admission decisions by priority lane.\n\
             # TYPE presburger_admission_total counter\n",
        );
        for l in ReqLane::ALL {
            for d in AdmitDecision::ALL {
                let n = self.admission_total(l, d);
                if n > 0 {
                    out.push_str(&format!(
                        "presburger_admission_total{{lane=\"{}\",decision=\"{}\"}} {n}\n",
                        l.label(),
                        d.label()
                    ));
                }
            }
        }
        out.push_str(
            "# HELP presburger_lane_queue_wait_us Admission-queue wait by priority lane, \
             microseconds.\n# TYPE presburger_lane_queue_wait_us histogram\n",
        );
        for l in ReqLane::ALL {
            let labels = format!("lane=\"{}\"", l.label());
            render_histogram_series(
                &mut out,
                "presburger_lane_queue_wait_us",
                &labels,
                &self.lane_queue_wait(l),
            );
        }
        out.push_str(
            "# HELP presburger_lane_service_us Worker service time (pop to reply) by priority \
             lane, microseconds.\n# TYPE presburger_lane_service_us histogram\n",
        );
        for l in ReqLane::ALL {
            let labels = format!("lane=\"{}\"", l.label());
            render_histogram_series(
                &mut out,
                "presburger_lane_service_us",
                &labels,
                &self.lane_service(l),
            );
        }
        out
    }
}

/// Renders one histogram series (all cumulative bucket lines plus
/// `_sum`/`_count`) when non-empty.
fn render_histogram_series(
    out: &mut String,
    name: &str,
    labels: &str,
    snapshot: &HistogramSnapshot,
) {
    if snapshot.is_empty() {
        return;
    }
    // An unlabeled series renders bare `_sum`/`_count` and `{le=…}`
    // buckets (the batch-size histogram has no dimensions).
    let le_prefix = if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    };
    let mut cumulative = 0u64;
    for (i, &n) in snapshot.buckets.iter().enumerate() {
        cumulative += n;
        out.push_str(&format!(
            "{name}_bucket{{{le_prefix}le=\"{}\"}} {cumulative}\n",
            bucket_le_label(i)
        ));
    }
    if labels.is_empty() {
        out.push_str(&format!("{name}_sum {}\n", snapshot.sum));
        out.push_str(&format!("{name}_count {}\n", snapshot.count));
    } else {
        out.push_str(&format!("{name}_sum{{{labels}}} {}\n", snapshot.sum));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", snapshot.count));
    }
}

/// The splinter count attributable to one request, from its counter
/// delta (the snapshot-diff the serve worker captures).
pub fn splinters_from_delta(delta: &PipelineStats) -> u64 {
    delta.get(crate::Counter::SplintersGenerated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 30), 30);
        assert_eq!(bucket_index((1 << 30) + 1), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bound(0), Some(1));
        assert_eq!(bucket_bound(30), Some(1 << 30));
        assert_eq!(bucket_bound(31), None);
        assert_eq!(bucket_le_label(31), "+Inf");
    }

    #[test]
    fn record_and_percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // Log buckets bound the relative error by the bucket width: the
        // interpolated percentile lies within a factor of two.
        let p50 = s.percentile(0.50);
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        let p999 = s.percentile(0.999);
        assert!((512..=1024).contains(&p999), "p999 = {p999}");
        assert_eq!(s.percentile(1.0), 1024);
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 4000);
    }

    /// Minimal deterministic RNG for the property tests (no external
    /// dependencies in this crate).
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn random_snapshot(rng: &mut SplitMix64) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for _ in 0..(rng.next() % 200) {
            // Skewed values spanning every bucket, overflow included.
            s.record(rng.next() >> (rng.next() % 64));
        }
        s
    }

    #[test]
    fn merge_is_associative_and_commutative_bucket_for_bucket() {
        let mut rng = SplitMix64(0xDEC0_DE00);
        for _ in 0..200 {
            let (a, b, c) = (
                random_snapshot(&mut rng),
                random_snapshot(&mut rng),
                random_snapshot(&mut rng),
            );
            let left = a.merge(&b.merge(&c));
            let right = a.merge(&b).merge(&c);
            assert_eq!(left, right, "merge must be associative");
            assert_eq!(a.merge(&b), b.merge(&a), "merge must be commutative");
            assert_eq!(
                left.count,
                a.count + b.count + c.count,
                "merge must not lose observations"
            );
        }
    }

    #[test]
    fn registry_observes_across_series() {
        let m = RequestMetrics::new(true);
        m.observe_request(RequestObservation {
            verb: ReqVerb::Count,
            outcome: ReqOutcome::Ok,
            lane: ReqLane::Interactive,
            duration_us: 800,
            queue_wait_us: 3,
            govern_overhead_us: 90,
            splinters: Some(17),
        });
        m.observe_shed(ReqVerb::Sum);
        assert_eq!(m.requests(ReqVerb::Count, ReqOutcome::Ok), 1);
        assert_eq!(m.requests(ReqVerb::Sum, ReqOutcome::Shed), 1);
        assert_eq!(m.duration(ReqVerb::Count, ReqOutcome::Ok).count, 1);
        assert_eq!(m.queue_wait(ReqVerb::Count).sum, 3);
        assert_eq!(m.govern_overhead(ReqVerb::Count).sum, 90);
        assert_eq!(m.splinters(ReqVerb::Count).sum, 17);
        assert_eq!(m.duration_merged(None).count, 1);
        assert_eq!(m.lane_queue_wait(ReqLane::Interactive).sum, 3);
        assert_eq!(m.lane_service(ReqLane::Interactive).sum, 800);
        assert!(m.lane_service(ReqLane::Batch).is_empty());
    }

    #[test]
    fn admission_family_counts_and_renders_after_flight_records() {
        let m = RequestMetrics::new(true);
        m.observe_admission(ReqLane::Interactive, AdmitDecision::Admit);
        m.observe_admission(ReqLane::Interactive, AdmitDecision::Admit);
        m.observe_admission(ReqLane::Batch, AdmitDecision::ShedQuota);
        m.observe_admission(ReqLane::Background, AdmitDecision::Evicted);
        assert_eq!(
            m.admission_total(ReqLane::Interactive, AdmitDecision::Admit),
            2
        );
        assert_eq!(
            m.admission_total(ReqLane::Batch, AdmitDecision::ShedQuota),
            1
        );
        let text = m.render_prometheus();
        assert!(
            text.contains("presburger_admission_total{lane=\"interactive\",decision=\"admit\"} 2")
        );
        assert!(
            text.contains("presburger_admission_total{lane=\"batch\",decision=\"shed_quota\"} 1")
        );
        assert!(
            text.contains("presburger_admission_total{lane=\"background\",decision=\"evicted\"} 1")
        );
        // Zero series are omitted; family order is flight_records then
        // admission then the lane histograms.
        assert!(!text.contains("decision=\"shed_drain\""));
        let flight = text.find("presburger_flight_records_total").unwrap();
        let admission = text.find("presburger_admission_total").unwrap();
        let lane_wait = text.find("presburger_lane_queue_wait_us").unwrap();
        let lane_service = text.find("presburger_lane_service_us").unwrap();
        assert!(flight < admission && admission < lane_wait && lane_wait < lane_service);
        // Disabled registries stay silent.
        let off = RequestMetrics::new(false);
        off.observe_admission(ReqLane::Batch, AdmitDecision::Admit);
        assert_eq!(off.admission_total(ReqLane::Batch, AdmitDecision::Admit), 0);
    }

    #[test]
    fn codec_and_batch_families_render_after_splinters() {
        let m = RequestMetrics::new(true);
        m.observe_codec_requests(ReqCodec::Text, 1);
        m.observe_codec_requests(ReqCodec::Binary, 16);
        m.observe_batch(16);
        assert_eq!(m.codec_requests(ReqCodec::Text), 1);
        assert_eq!(m.codec_requests(ReqCodec::Binary), 16);
        assert_eq!(m.batch_size().count, 1);
        let text = m.render_prometheus();
        assert!(text.contains("presburger_codec_requests_total{codec=\"text\"} 1"));
        assert!(text.contains("presburger_codec_requests_total{codec=\"binary\"} 16"));
        assert!(text.contains("presburger_batch_size_bucket{le=\"16\"} 1"));
        assert!(text.contains("presburger_batch_size_sum 16"));
        assert!(text.contains("presburger_batch_size_count 1"));
        // Family order: splinters, then codec, then the event counters.
        let splinters = text.find("presburger_request_splinters").unwrap();
        let codec = text.find("presburger_codec_requests_total").unwrap();
        let events = text.find("presburger_events_logged_total").unwrap();
        assert!(splinters < codec && codec < events);
        // Disabled registries stay silent.
        let off = RequestMetrics::new(false);
        off.observe_codec_requests(ReqCodec::Binary, 5);
        off.observe_batch(5);
        assert_eq!(off.codec_requests(ReqCodec::Binary), 0);
        assert!(off.batch_size().is_empty());
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = RequestMetrics::new(false);
        m.observe_request(RequestObservation {
            verb: ReqVerb::Count,
            outcome: ReqOutcome::Ok,
            lane: ReqLane::Batch,
            duration_us: 800,
            queue_wait_us: 3,
            govern_overhead_us: 90,
            splinters: Some(17),
        });
        m.observe_shed(ReqVerb::Count);
        assert_eq!(m.requests(ReqVerb::Count, ReqOutcome::Ok), 0);
        assert_eq!(m.requests(ReqVerb::Count, ReqOutcome::Shed), 0);
        assert!(m.duration_merged(None).is_empty());
    }

    #[test]
    fn prometheus_exposition_is_stable_and_cumulative() {
        let m = RequestMetrics::new(true);
        for d in [1u64, 5, 1000] {
            m.observe_request(RequestObservation {
                verb: ReqVerb::Count,
                outcome: ReqOutcome::Ok,
                lane: ReqLane::Batch,
                duration_us: d,
                queue_wait_us: 0,
                govern_overhead_us: 1,
                splinters: None,
            });
        }
        let text = m.render_prometheus();
        assert!(text.contains("presburger_requests_total{verb=\"count\",outcome=\"ok\"} 3"));
        // Buckets are cumulative: every line after the first observation
        // carries it forward, and +Inf equals _count.
        assert!(text.contains(
            "presburger_request_duration_us_bucket{verb=\"count\",outcome=\"ok\",le=\"1\"} 1"
        ));
        assert!(text.contains(
            "presburger_request_duration_us_bucket{verb=\"count\",outcome=\"ok\",le=\"+Inf\"} 3"
        ));
        assert!(
            text.contains("presburger_request_duration_us_sum{verb=\"count\",outcome=\"ok\"} 1006")
        );
        assert!(
            text.contains("presburger_request_duration_us_count{verb=\"count\",outcome=\"ok\"} 3")
        );
        // Empty series are omitted; families and label order are stable.
        assert!(!text.contains("outcome=\"err\""));
        assert_eq!(text, m.render_prometheus(), "exposition must be stable");
        // Rendering twice after another observation keeps ordering.
        let sum_pos = text.find("verb=\"count\"").unwrap();
        assert!(sum_pos < text.find("presburger_queue_wait_us").unwrap());
    }
}
