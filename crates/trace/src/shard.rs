//! Shard-labeled supervision metrics for the serving layer.
//!
//! The shard pool (`presburger-serve`'s `serve::shard`) runs N internal
//! server instances behind a consistent-hash router and a supervisor.
//! Each shard owns one [`ShardRow`] of relaxed atomics; the pool renders
//! them as `presburger_shard_*` Prometheus counter families labeled by
//! shard index. Rows are owned by their pool (no global registry), so
//! concurrent pools — common in tests — never observe each other.
//!
//! The module also hosts the process-wide poisoned-lock recovery tally
//! ([`note_lock_recovered`]): recoveries can happen on any thread,
//! including ones with counter collection off, so the serving layer
//! keeps an always-on atomic alongside the thread-local
//! [`Counter::ServeLockRecovered`](crate::Counter::ServeLockRecovered).

use std::sync::atomic::{AtomicU64, Ordering};

static LOCK_RECOVERED: AtomicU64 = AtomicU64::new(0);

/// Records one poisoned-lock recovery: bumps the process-wide tally and
/// the thread-local [`Counter::ServeLockRecovered`](crate::Counter::ServeLockRecovered)
/// (the latter only where collection is enabled).
pub fn note_lock_recovered() {
    LOCK_RECOVERED.fetch_add(1, Ordering::Relaxed);
    crate::bump(crate::Counter::ServeLockRecovered);
}

/// Total poisoned-lock recoveries since process start.
pub fn lock_recovered_total() -> u64 {
    LOCK_RECOVERED.load(Ordering::Relaxed)
}

/// Per-shard supervision counters (relaxed atomics, owned by the pool).
#[derive(Debug, Default)]
pub struct ShardRow {
    /// Requests the router sent to this shard (including failover
    /// admissions when the hashed-to shard was restarting).
    pub routed: AtomicU64,
    /// Admitted-but-unanswered requests moved off this shard to a
    /// sibling after the shard was condemned.
    pub redispatched: AtomicU64,
    /// Orphaned requests answered by the supervisor's budgeted-bounds
    /// fallback because no sibling could take them in time.
    pub rescued: AtomicU64,
    /// Replacement servers started for this shard.
    pub restarts: AtomicU64,
    /// Crashed-shard detections (worker threads lost without a drain).
    pub crashes: AtomicU64,
    /// Wedged-shard detections (heartbeat stalled with work in flight).
    pub wedges: AtomicU64,
}

impl ShardRow {
    /// A zeroed row.
    pub fn new() -> ShardRow {
        ShardRow::default()
    }

    /// Adds 1 to `field` (any of the row's atomics).
    pub fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// An owned copy of the row's current values.
    pub fn snapshot(&self) -> ShardRowSnapshot {
        ShardRowSnapshot {
            routed: self.routed.load(Ordering::Relaxed),
            redispatched: self.redispatched.load(Ordering::Relaxed),
            rescued: self.rescued.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            wedges: self.wedges.load(Ordering::Relaxed),
        }
    }
}

/// An owned, copyable snapshot of a [`ShardRow`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRowSnapshot {
    /// See [`ShardRow::routed`].
    pub routed: u64,
    /// See [`ShardRow::redispatched`].
    pub redispatched: u64,
    /// See [`ShardRow::rescued`].
    pub rescued: u64,
    /// See [`ShardRow::restarts`].
    pub restarts: u64,
    /// See [`ShardRow::crashes`].
    pub crashes: u64,
    /// See [`ShardRow::wedges`].
    pub wedges: u64,
}

/// The `presburger_shard_*` Prometheus counter families for one pool's
/// rows (one sample per shard, labeled `shard="<index>"`), plus the
/// process-wide `presburger_serve_lock_recovered_total`. Stable order:
/// families in declaration order, shards in index order. No trailing
/// `# EOF` — the protocol layer appends it.
pub fn render_prometheus(rows: &[ShardRowSnapshot]) -> String {
    type Field = fn(&ShardRowSnapshot) -> u64;
    const FAMILIES: [(&str, &str, Field); 6] = [
        (
            "presburger_shard_routed_total",
            "Requests routed to the shard.",
            |r| r.routed,
        ),
        (
            "presburger_shard_redispatched_total",
            "Admitted requests re-dispatched to a sibling after shard failure.",
            |r| r.redispatched,
        ),
        (
            "presburger_shard_rescued_total",
            "Orphaned requests answered by the budgeted-bounds fallback.",
            |r| r.rescued,
        ),
        (
            "presburger_shard_restarts_total",
            "Replacement servers started by the supervisor.",
            |r| r.restarts,
        ),
        (
            "presburger_shard_crashes_total",
            "Crashed-shard detections (worker threads lost).",
            |r| r.crashes,
        ),
        (
            "presburger_shard_wedges_total",
            "Wedged-shard detections (heartbeat stall with work in flight).",
            |r| r.wedges,
        ),
    ];
    let mut out = String::new();
    for (name, help, get) in FAMILIES {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(help);
        out.push_str("\n# TYPE ");
        out.push_str(name);
        out.push_str(" counter\n");
        for (i, row) in rows.iter().enumerate() {
            out.push_str(name);
            out.push_str("{shard=\"");
            out.push_str(&i.to_string());
            out.push_str("\"} ");
            out.push_str(&get(row).to_string());
            out.push('\n');
        }
    }
    out.push_str(
        "# HELP presburger_serve_lock_recovered_total \
         Poisoned locks recovered by the serving layer.\n\
         # TYPE presburger_serve_lock_recovered_total counter\n",
    );
    out.push_str("presburger_serve_lock_recovered_total ");
    out.push_str(&lock_recovered_total().to_string());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_bumps() {
        let row = ShardRow::new();
        ShardRow::bump(&row.routed);
        ShardRow::bump(&row.routed);
        ShardRow::bump(&row.restarts);
        let s = row.snapshot();
        assert_eq!(s.routed, 2);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.redispatched, 0);
    }

    #[test]
    fn exposition_labels_every_shard_in_order() {
        let a = ShardRowSnapshot {
            routed: 3,
            ..Default::default()
        };
        let b = ShardRowSnapshot {
            routed: 5,
            redispatched: 1,
            ..Default::default()
        };
        let text = render_prometheus(&[a, b]);
        let routed0 = text.find("presburger_shard_routed_total{shard=\"0\"} 3");
        let routed1 = text.find("presburger_shard_routed_total{shard=\"1\"} 5");
        assert!(routed0.is_some() && routed1.is_some(), "text was: {text}");
        assert!(routed0 < routed1);
        assert!(text.contains("presburger_shard_redispatched_total{shard=\"1\"} 1"));
        assert!(text.contains("# TYPE presburger_shard_wedges_total counter"));
        assert!(text.contains("presburger_serve_lock_recovered_total"));
        assert!(!text.contains("# EOF"));
    }

    #[test]
    fn lock_recovery_tally_is_monotonic() {
        let before = lock_recovered_total();
        note_lock_recovered();
        assert!(lock_recovered_total() > before);
    }
}
