//! The governance side of the counter layer: **budget charging**,
//! **deadlines**, **cancellation**, and **fault injection**.
//!
//! The counting engine's blowup modes (splintering §5.2, DNF expansion
//! §2.5, Fourier–Motzkin coefficient growth) all announce themselves
//! through the pipeline counters *as they happen* — so the cheapest
//! possible governor piggybacks on the existing counter hooks. When a
//! governed region is [installed](install) on a thread, every
//! [`crate::add`]/[`crate::record_max`] call also *charges* the
//! thread-local [`Limits`]; exceeding a cap, missing a deadline, or
//! observing the cancellation token **trips** the region.
//!
//! A trip is an unwind carrying a [`Trip`] payload
//! ([`std::panic::panic_any`]). The counting crate wraps every governed
//! region in `catch_unwind` and converts the payload into a structured
//! `CountError` — no `Result` plumbing is needed through the `omega`
//! hot loops, and the ungoverned path stays a single thread-local flag
//! load. Trips are *expected* control flow: a process-wide panic-hook
//! filter suppresses the default "thread panicked" stderr noise for
//! `Trip` payloads (and only for those).
//!
//! # Fault injection
//!
//! `PRESBURGER_FAULT=<site>:<nth>[:panic]` arms a one-shot fault:
//!
//! * `<site>` — a counter name (see [`Counter::name`]) or the
//!   pseudo-sites `deadline` / `cancel`;
//! * `<nth>` — fire when the site's charged total first reaches `nth`
//!   (for pseudo-sites: the `nth` charge event of any kind);
//! * `:panic` — raise a plain `panic!` instead of a budget-style trip,
//!   exercising the pipeline's panic isolation.
//!
//! Charged totals are per governed region (one clause task, or the DNF
//! phase), so the fault fires deterministically in the first region
//! that reaches the threshold — independent of thread count. Faults
//! are only armed in *exact* regions: degraded (§4.6 bounds) reruns
//! run fault-free so that the degradation path itself stays testable.

use crate::counters::{self, Counter, NUM_COUNTERS};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

/// The payload of a governed-region unwind: which resource tripped,
/// what the limit was, and how much was spent when the trip fired.
/// `resource` is a counter name, `"deadline"`, `"cancelled"`, or one
/// of the engine's named fuel pools (e.g. `"wildcard_projection_fuel"`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trip {
    /// Stable name of the exhausted resource.
    pub resource: &'static str,
    /// The configured limit (milliseconds for `"deadline"`).
    pub limit: u64,
    /// The amount spent when the trip fired.
    pub spent: u64,
}

/// Where an injected fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// At a charge of this counter.
    Counter(Counter),
    /// At the `nth` charge event of any kind, as a deadline trip.
    Deadline,
    /// At the `nth` charge event of any kind, as a cancellation trip.
    Cancel,
}

/// A parsed `PRESBURGER_FAULT` specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The counter (or pseudo-site) the fault is armed on.
    pub site: FaultSite,
    /// Fire when the site's charged total first reaches this value.
    pub nth: u64,
    /// Raise a plain `panic!` instead of a budget-style [`Trip`].
    pub panic: bool,
}

/// Parses a `<site>:<nth>[:panic]` fault specification.
pub fn parse_fault(spec: &str) -> Result<FaultSpec, String> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or("");
    let nth: u64 = parts
        .next()
        .ok_or_else(|| format!("fault spec {spec:?}: missing ':<nth>'"))?
        .parse()
        .map_err(|_| format!("fault spec {spec:?}: <nth> must be a number"))?;
    let panic = match parts.next() {
        None => false,
        Some("panic") => true,
        Some(other) => return Err(format!("fault spec {spec:?}: unknown action {other:?}")),
    };
    if parts.next().is_some() {
        return Err(format!("fault spec {spec:?}: too many fields"));
    }
    let site = match name {
        "deadline" => FaultSite::Deadline,
        "cancel" | "cancelled" => FaultSite::Cancel,
        _ => FaultSite::Counter(
            Counter::ALL
                .into_iter()
                .find(|c| c.name() == name)
                .ok_or_else(|| format!("fault spec {spec:?}: unknown site {name:?}"))?,
        ),
    };
    if nth == 0 {
        return Err(format!("fault spec {spec:?}: <nth> must be >= 1"));
    }
    Ok(FaultSpec { site, nth, panic })
}

/// Reads and parses `PRESBURGER_FAULT` from the environment. An
/// unparsable value is reported on stderr and ignored (the production
/// path must never die because of a typo in a test harness variable).
pub fn fault_from_env() -> Option<FaultSpec> {
    let spec = std::env::var("PRESBURGER_FAULT").ok()?;
    match parse_fault(&spec) {
        Ok(f) => Some(f),
        Err(e) => {
            eprintln!("ignoring PRESBURGER_FAULT: {e}");
            None
        }
    }
}

/// The budgets a governed region is charged against. Plain data: the
/// counting crate builds one per region (clause task, DNF phase, or
/// degraded rerun) and [installs](install) it on the executing thread.
#[derive(Clone, Debug)]
pub struct Limits {
    /// Per-counter caps; a charge pushing the regional total (or a
    /// gauge value) *above* the cap trips the region.
    pub caps: [Option<u64>; NUM_COUNTERS],
    /// Trip when `Instant::now()` passes the instant; the `u64` is the
    /// configured limit in milliseconds, reported in the [`Trip`].
    pub deadline: Option<(Instant, u64)>,
    /// Trip when the shared token becomes `true`.
    pub cancel: Option<Arc<AtomicBool>>,
    /// One-shot injected fault (ignored unless `fault_active`).
    pub fault: Option<FaultSpec>,
    /// Whether the fault is armed — `false` in degraded reruns so the
    /// degradation path can complete under an armed fault.
    pub fault_active: bool,
}

impl Default for Limits {
    /// No caps, no deadline, no cancellation, no fault: a region that
    /// never trips.
    fn default() -> Limits {
        Limits {
            caps: [None; NUM_COUNTERS],
            deadline: None,
            cancel: None,
            fault: None,
            fault_active: false,
        }
    }
}

/// Per-thread state of the installed governed region.
struct State {
    limits: Limits,
    /// Regional charge totals (counts accumulate, gauges high-water).
    spent: [u64; NUM_COUNTERS],
    /// Total charge events, for the periodic deadline/cancel check.
    events: u64,
    /// Next `events` value at which to poll deadline/cancellation.
    next_check: u64,
    fault_fired: bool,
}

thread_local! {
    static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// How many charge events pass between deadline/cancellation polls
/// (the first charge always polls). Counter charges are frequent deep
/// in the hot loops, so 64 keeps the reaction latency tiny without
/// paying `Instant::now()` per charge.
const CHECK_EVERY: u64 = 64;

/// RAII installation of a governed region on the current thread;
/// dropping it (normally or during an unwind) uninstalls the region.
pub struct Installed {
    _private: (),
}

impl Drop for Installed {
    fn drop(&mut self) {
        STATE.with(|s| s.borrow_mut().take());
        crate::set_flag(crate::FLAG_GOVERNED, false);
    }
}

/// Installs `limits` as the current thread's governed region. Regions
/// do not nest; the previous region (if any) is replaced.
///
/// Call this *inside* the `catch_unwind` closure that delimits the
/// region: the first charge after installation polls the deadline and
/// cancellation token immediately.
pub fn install(limits: Limits) -> Installed {
    install_trip_hook();
    STATE.with(|s| {
        *s.borrow_mut() = Some(State {
            limits,
            spent: [0; NUM_COUNTERS],
            events: 0,
            next_check: 1,
            fault_fired: false,
        });
    });
    crate::set_flag(crate::FLAG_GOVERNED, true);
    Installed { _private: () }
}

/// Whether the installed governed region (if any) tolerates sub-problem
/// memoization. A memo hit replays the original computation's counter
/// delta in one lump, which preserves every regional *total* but not
/// the exact interleaving of charges — so regions with per-counter caps
/// or an armed fault (both of which care about the precise charge at
/// which a threshold is crossed) are not memo-safe. Deadline- and
/// cancellation-only regions (the common serving configuration) are.
pub(crate) fn memo_safe() -> bool {
    STATE.with(|s| match s.borrow().as_ref() {
        None => true,
        Some(st) => {
            st.limits.caps.iter().all(Option::is_none)
                && !(st.limits.fault_active && st.limits.fault.is_some())
        }
    })
}

/// Unwinds the current region with a [`Trip`] payload. Public so the
/// engine's named fuel pools (wildcard projection, disjoint
/// conversion) can report exhaustion through the same channel.
pub fn trip(resource: &'static str, limit: u64, spent: u64) -> ! {
    install_trip_hook();
    if crate::counting() {
        counters::add_raw(Counter::GovernorTrips, 1);
    }
    std::panic::panic_any(Trip {
        resource,
        limit,
        spent,
    });
}

/// Charges `n` units of `counter` against the installed region.
/// Called from [`crate::add`] when the governed flag is set.
pub(crate) fn charge(counter: Counter, n: u64) {
    let decision = STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let st = borrow.as_mut()?;
        let i = counter as usize;
        st.spent[i] = st.spent[i].saturating_add(n);
        decide(st, counter, st.spent[i])
    });
    act(decision);
}

/// Charges a gauge observation of `value` on `counter` against the
/// installed region. Called from [`crate::record_max`].
pub(crate) fn charge_gauge(counter: Counter, value: u64) {
    let decision = STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let st = borrow.as_mut()?;
        let i = counter as usize;
        if value > st.spent[i] {
            st.spent[i] = value;
        }
        decide(st, counter, value)
    });
    act(decision);
}

/// What a charge decided to do, computed while the thread-local state
/// is borrowed and executed after the borrow is released.
enum Decision {
    Panic(&'static str, u64),
    Trip(Trip),
}

fn decide(st: &mut State, counter: Counter, total: u64) -> Option<Decision> {
    // 1. The armed fault, if this charge reached its threshold.
    if st.limits.fault_active && !st.fault_fired {
        if let Some(f) = st.limits.fault {
            let hit = match f.site {
                FaultSite::Counter(c) => c == counter && total >= f.nth,
                // pseudo-sites count charge events of any kind
                FaultSite::Deadline | FaultSite::Cancel => st.events + 1 >= f.nth,
            };
            if hit {
                st.fault_fired = true;
                if f.panic {
                    return Some(Decision::Panic(site_name(f.site), f.nth));
                }
                let trip = match f.site {
                    FaultSite::Counter(c) => Trip {
                        resource: c.name(),
                        limit: f.nth.saturating_sub(1),
                        spent: total,
                    },
                    FaultSite::Deadline => Trip {
                        resource: "deadline",
                        limit: st.limits.deadline.map(|(_, ms)| ms).unwrap_or(0),
                        spent: st.limits.deadline.map(|(_, ms)| ms).unwrap_or(0),
                    },
                    FaultSite::Cancel => Trip {
                        resource: "cancelled",
                        limit: 0,
                        spent: 0,
                    },
                };
                return Some(Decision::Trip(trip));
            }
        }
    }
    // 2. The counter's own cap.
    if let Some(cap) = st.limits.caps[counter as usize] {
        if total > cap {
            return Some(Decision::Trip(Trip {
                resource: counter.name(),
                limit: cap,
                spent: total,
            }));
        }
    }
    // 3. Periodic deadline / cancellation poll.
    st.events += 1;
    if st.events >= st.next_check {
        st.next_check = st.events + CHECK_EVERY;
        if let Some(cancel) = &st.limits.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Some(Decision::Trip(Trip {
                    resource: "cancelled",
                    limit: 0,
                    spent: 0,
                }));
            }
        }
        if let Some((at, limit_ms)) = st.limits.deadline {
            let now = Instant::now();
            if now >= at {
                let over = now.duration_since(at).as_millis() as u64;
                return Some(Decision::Trip(Trip {
                    resource: "deadline",
                    limit: limit_ms,
                    spent: limit_ms.saturating_add(over),
                }));
            }
        }
    }
    None
}

fn act(decision: Option<Decision>) {
    match decision {
        None => {}
        Some(Decision::Panic(site, nth)) => {
            panic!("injected fault: {site} at {nth}")
        }
        Some(Decision::Trip(t)) => trip(t.resource, t.limit, t.spent),
    }
}

fn site_name(site: FaultSite) -> &'static str {
    match site {
        FaultSite::Counter(c) => c.name(),
        FaultSite::Deadline => "deadline",
        FaultSite::Cancel => "cancel",
    }
}

/// Installs (once per process) a panic-hook filter that keeps [`Trip`]
/// unwinds — expected, always-caught control flow — off stderr. Every
/// other panic is passed to the previously installed hook untouched.
fn install_trip_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Trip>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn trip_of(payload: Box<dyn std::any::Any + Send>) -> Trip {
        *payload.downcast::<Trip>().expect("payload is a Trip")
    }

    #[test]
    fn fault_spec_parsing() {
        let f = parse_fault("splinters_generated:3").unwrap();
        assert_eq!(f.site, FaultSite::Counter(Counter::SplintersGenerated));
        assert_eq!(f.nth, 3);
        assert!(!f.panic);
        let f = parse_fault("deadline:10:panic").unwrap();
        assert_eq!(f.site, FaultSite::Deadline);
        assert!(f.panic);
        assert_eq!(parse_fault("cancel:1").unwrap().site, FaultSite::Cancel);
        assert!(parse_fault("bogus_counter:1").is_err());
        assert!(parse_fault("gist_calls").is_err());
        assert!(parse_fault("gist_calls:0").is_err());
        assert!(parse_fault("gist_calls:1:explode").is_err());
    }

    #[test]
    fn cap_trips_and_uninstall_clears() {
        let mut limits = Limits::default();
        limits.caps[Counter::GistCalls as usize] = Some(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = install(limits);
            crate::add(Counter::GistCalls, 2); // at the cap: fine
            crate::add(Counter::GistCalls, 1); // over: trips
        }));
        let t = trip_of(r.unwrap_err());
        assert_eq!(t.resource, "gist_calls");
        assert_eq!(t.limit, 2);
        assert_eq!(t.spent, 3);
        // the unwind dropped the guard: charges are no-ops again
        crate::add(Counter::GistCalls, 100);
    }

    #[test]
    fn gauge_cap_trips_on_high_water() {
        let mut limits = Limits::default();
        limits.caps[Counter::MaxCoeffBits as usize] = Some(64);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = install(limits);
            crate::record_max(Counter::MaxCoeffBits, 60); // under
            crate::record_max(Counter::MaxCoeffBits, 65); // over: trips
        }));
        let t = trip_of(r.unwrap_err());
        assert_eq!(t.resource, "max_coeff_bits");
        assert_eq!(t.spent, 65);
    }

    #[test]
    fn cancellation_is_observed_on_first_charge() {
        let token = Arc::new(AtomicBool::new(true));
        let limits = Limits {
            cancel: Some(token),
            ..Limits::default()
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = install(limits);
            crate::bump(Counter::GistCalls);
        }));
        assert_eq!(trip_of(r.unwrap_err()).resource, "cancelled");
    }

    #[test]
    fn expired_deadline_trips() {
        let limits = Limits {
            deadline: Some((Instant::now(), 7)),
            ..Limits::default()
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = install(limits);
            crate::bump(Counter::GistCalls);
        }));
        let t = trip_of(r.unwrap_err());
        assert_eq!(t.resource, "deadline");
        assert_eq!(t.limit, 7);
        assert!(t.spent >= 7);
    }

    #[test]
    fn counter_fault_fires_at_nth_and_only_when_active() {
        let fault = parse_fault("gist_calls:3").unwrap();
        // inactive fault: charges pass
        let limits = Limits {
            fault: Some(fault),
            fault_active: false,
            ..Limits::default()
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = install(limits);
            crate::add(Counter::GistCalls, 10);
        }));
        assert!(r.is_ok());
        // active fault: trips when the regional total reaches 3
        let limits = Limits {
            fault: Some(fault),
            fault_active: true,
            ..Limits::default()
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = install(limits);
            crate::bump(Counter::GistCalls);
            crate::bump(Counter::GistCalls);
            crate::bump(Counter::GistCalls); // third: fires
        }));
        let t = trip_of(r.unwrap_err());
        assert_eq!(t.resource, "gist_calls");
        assert_eq!(t.spent, 3);
    }

    #[test]
    fn panic_fault_raises_a_plain_panic() {
        let limits = Limits {
            fault: Some(parse_fault("gist_calls:1:panic").unwrap()),
            fault_active: true,
            ..Limits::default()
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = install(limits);
            crate::bump(Counter::GistCalls);
        }));
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("plain panic payload");
        assert!(msg.contains("injected fault"), "was: {msg}");
    }

    #[test]
    fn ungoverned_threads_never_charge() {
        // No install on this thread: the flag is off, charges are free.
        crate::add(Counter::GistCalls, u64::MAX);
        crate::record_max(Counter::MaxCoeffBits, u64::MAX);
    }
}
