//! The pipeline counter registry.
//!
//! Counters are plain thread-local `Cell<u64>`s indexed by the
//! [`Counter`] enum; a [`PipelineStats`] is an owned snapshot of all of
//! them, with set-difference ([`PipelineStats::delta`]) so callers can
//! meter a single region of work.

use crate::json::JsonObject;
use std::cell::Cell;
use std::fmt;

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal / $kind:ident,)*) => {
        /// Everything the pipeline counts. The `&'static str` names
        /// (see [`Counter::name`]) are the stable identifiers used in
        /// JSON output and EXPERIMENTS.md columns.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum Counter {
            $($(#[$doc])* $variant,)*
        }

        /// Number of distinct counters.
        pub const NUM_COUNTERS: usize = [$(Counter::$variant,)*].len();

        impl Counter {
            /// Every counter, in declaration order.
            pub const ALL: [Counter; NUM_COUNTERS] = [$(Counter::$variant,)*];

            /// The stable snake_case name used in reports and JSON.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)*
                }
            }

            /// Gauges hold a high-water mark rather than a running
            /// count; [`PipelineStats::delta`] keeps them as-is instead
            /// of subtracting.
            pub fn is_gauge(self) -> bool {
                match self {
                    $(Counter::$variant => counters!(@gauge $kind),)*
                }
            }
        }
    };
    (@gauge count) => { false };
    (@gauge gauge) => { true };
}

counters! {
    /// Inequality eliminations that used only the real shadow (§2.1).
    EliminateReal => "eliminate_real" / count,
    /// Inequality eliminations that used only the dark shadow (§2.2).
    EliminateDark => "eliminate_dark" / count,
    /// Exact eliminations in the overlapping dark-shadow + splinters mode.
    EliminateExactOverlapping => "eliminate_exact_overlapping" / count,
    /// Exact eliminations in the §5.2 disjoint-splinters mode.
    EliminateExactDisjoint => "eliminate_exact_disjoint" / count,
    /// Variables eliminated exactly through an equality or unit bound.
    EliminateViaEquality => "eliminate_via_equality" / count,
    /// Splinter clauses produced by exact elimination (before pruning).
    SplintersGenerated => "splinters_generated" / count,
    /// Splinter clauses dropped because normalization proved them false.
    SplintersPruned => "splinters_pruned" / count,
    /// Dark-shadow clauses emitted by exact elimination.
    DarkShadowClauses => "dark_shadow_clauses" / count,
    /// Constraints removed by the complete redundancy test (§2.3).
    RedundantRemovedComplete => "redundant_removed_complete" / count,
    /// Constraints certified non-redundant by the fast screen (skipping
    /// the complete test).
    RedundantFastSkips => "redundant_fast_skips" / count,
    /// Calls to `gist` (§2.3).
    GistCalls => "gist_calls" / count,
    /// Complete integer feasibility tests (§2.2).
    FeasibilityChecks => "feasibility_checks" / count,
    /// Clauses entering `simplify`'s cleanup from the raw DNF expansion.
    DnfClausesIn => "dnf_clauses_in" / count,
    /// Clauses surviving cleanup (feasibility + redundancy + subset
    /// pruning), before any disjoint conversion.
    DnfClausesClean => "dnf_clauses_clean" / count,
    /// Clauses emitted by `make_disjoint` (§5.3).
    DnfClausesDisjoint => "dnf_clauses_disjoint" / count,
    /// Disjoint case splits introduced by the §4.4 bound analysis.
    ConvexSplitCases => "convex_split_cases" / count,
    /// Closed-form leaf summations produced by the convex engine — the
    /// number Pugh compares against Tawbi's "pieces".
    ConvexLeafPieces => "convex_leaf_pieces" / count,
    /// Faulhaber telescoping at polynomial degree 0.
    FaulhaberDeg0 => "faulhaber_deg0" / count,
    /// Faulhaber telescoping at polynomial degree 1.
    FaulhaberDeg1 => "faulhaber_deg1" / count,
    /// Faulhaber telescoping at polynomial degree 2.
    FaulhaberDeg2 => "faulhaber_deg2" / count,
    /// Faulhaber telescoping at polynomial degree 3.
    FaulhaberDeg3 => "faulhaber_deg3" / count,
    /// Faulhaber telescoping at polynomial degree ≥ 4.
    FaulhaberDegHi => "faulhaber_deg_hi" / count,
    /// Smith-normal-form decompositions (projected sums, §4.5).
    SmithNormalFormCalls => "smith_normal_form_calls" / count,
    /// `Int` values materialized beyond the inline i128 representation.
    IntPromotions => "int_promotions" / count,
    /// Widest bignum materialized, in bits (gauge).
    MaxCoeffBits => "max_coeff_bits" / gauge,
    /// Adaptive counting: bound-pair computations (§4.6).
    AdaptiveBoundsPasses => "adaptive_bounds_passes" / count,
    /// Adaptive counting: falls back to the exact engine.
    AdaptiveExactFallbacks => "adaptive_exact_fallbacks" / count,
    /// Tawbi baseline: polyhedral case splits (leaf summations).
    TawbiSplits => "tawbi_splits" / count,
    /// Haghighat–Polychronopoulos baseline: min/max rewrite steps.
    HpRewriteSteps => "hp_rewrite_steps" / count,
    /// Fahringer (FST) baseline: inclusion–exclusion summation terms.
    FstSummations => "fst_summations" / count,
    /// Clauses produced by DNF cross-products (§2.5) — charged
    /// incrementally, so runaway expansion is observable (and
    /// governable) *while* it happens, not after.
    DnfWorkClauses => "dnf_work_clauses" / count,
    /// `Conjunct::normalize` passes — the innermost heartbeat of the
    /// pipeline, and the governor's most frequent deadline checkpoint.
    NormalizeCalls => "normalize_calls" / count,
    /// Deepest `sum_clause` recursion reached (gauge).
    SumDepth => "sum_depth" / gauge,
    /// Budget / deadline / cancellation trips raised by the governor.
    GovernorTrips => "governor_trips" / count,
    /// Clauses degraded from exact counting to §4.6 bounds.
    ClausesDegraded => "clauses_degraded" / count,
    /// Worker panics caught and isolated by the clause pipeline.
    WorkerPanics => "worker_panics" / count,
    /// Requests admitted by the serving layer (`presburger-serve`).
    ServeRequests => "serve_requests" / count,
    /// Load-shedding replies issued by the serving layer's admission
    /// queue (queue full or draining).
    ServeSheds => "serve_sheds" / count,
    /// Circuit-breaker closed→open transitions in the serving layer.
    ServeBreakerOpens => "serve_breaker_opens" / count,
    /// Most severe circuit-breaker state reached (gauge: 0 closed,
    /// 1 half-open, 2 open).
    ServeBreakerState => "serve_breaker_state" / gauge,
    /// Result-cache hits in the serving layer.
    ServeCacheHits => "serve_cache_hits" / count,
    /// Result-cache misses in the serving layer.
    ServeCacheMisses => "serve_cache_misses" / count,
    /// Deepest admission-queue depth observed by the serving layer
    /// (gauge).
    ServeQueueDepthPeak => "serve_queue_depth_peak" / gauge,
    /// Poisoned locks recovered by the serving layer instead of
    /// propagating the poison (a worker panic under a held lock costs
    /// one request, never the lock).
    ServeLockRecovered => "serve_lock_recovered" / count,
    /// Sub-problem memo-table hits (eliminate / Faulhaber / Smith).
    /// Hit counts legitimately vary with thread count and cache
    /// warmth; determinism gates must mask them (the replayed counter
    /// deltas keep every *other* counter byte-identical).
    MemoHit => "memo_hits" / count,
    /// Sub-problem memo-table misses (a fresh computation was recorded).
    MemoMiss => "memo_misses" / count,
    /// High-water mark of this thread's local memo-table footprint in
    /// bytes (gauge; approximate).
    MemoBytes => "memo_bytes" / gauge,
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

thread_local! {
    static CELLS: [Cell<u64>; NUM_COUNTERS] = const {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Cell<u64> = Cell::new(0);
        [ZERO; NUM_COUNTERS]
    };
}

pub(crate) fn add_raw(counter: Counter, n: u64) {
    CELLS.with(|cells| {
        let cell = &cells[counter as usize];
        cell.set(cell.get().saturating_add(n));
    });
}

pub(crate) fn max_raw(counter: Counter, value: u64) {
    CELLS.with(|cells| {
        let cell = &cells[counter as usize];
        if value > cell.get() {
            cell.set(value);
        }
    });
}

/// Folds a worker thread's snapshot into this thread's cells: running
/// counts are added, gauges raised to the worker's high-water mark.
pub(crate) fn merge(stats: &PipelineStats) {
    for c in Counter::ALL {
        let v = stats.get(c);
        if v == 0 {
            continue;
        }
        if c.is_gauge() {
            max_raw(c, v);
        } else {
            add_raw(c, v);
        }
    }
}

pub(crate) fn snapshot() -> PipelineStats {
    CELLS.with(|cells| {
        let mut values = [0u64; NUM_COUNTERS];
        for (v, c) in values.iter_mut().zip(cells.iter()) {
            *v = c.get();
        }
        PipelineStats { values }
    })
}

pub(crate) fn reset() {
    CELLS.with(|cells| {
        for c in cells {
            c.set(0);
        }
    });
}

/// An owned snapshot of every pipeline counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineStats {
    values: [u64; NUM_COUNTERS],
}

impl Default for PipelineStats {
    /// All-zero (the registry now exceeds the array sizes `derive`
    /// handles).
    fn default() -> PipelineStats {
        PipelineStats {
            values: [0; NUM_COUNTERS],
        }
    }
}

impl PipelineStats {
    /// The value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// Builds a snapshot from a raw value array (the memo layer records
    /// per-computation deltas without touching the live cells).
    pub(crate) fn from_raw(values: [u64; NUM_COUNTERS]) -> PipelineStats {
        PipelineStats { values }
    }

    /// Counters attributable to the work done between `earlier` and
    /// `self`: running counts are subtracted, gauges keep their final
    /// high-water mark.
    #[must_use]
    pub fn delta(&self, earlier: &PipelineStats) -> PipelineStats {
        let mut values = [0u64; NUM_COUNTERS];
        for c in Counter::ALL {
            let i = c as usize;
            values[i] = if c.is_gauge() {
                self.values[i]
            } else {
                self.values[i].saturating_sub(earlier.values[i])
            };
        }
        PipelineStats { values }
    }

    /// `(counter, value)` pairs for every counter with a nonzero value.
    pub fn nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .into_iter()
            .map(|c| (c, self.get(c)))
            .filter(|&(_, v)| v > 0)
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// This snapshot with the memoization meta-counters
    /// ([`Counter::MemoHit`], [`Counter::MemoMiss`],
    /// [`Counter::MemoBytes`]) zeroed. They are the only counters
    /// allowed to differ between memo-on and memo-off runs or across
    /// thread counts — hit *patterns* vary with table warmth and work
    /// partitioning, while every replayed counter stays byte-identical
    /// — so determinism comparisons equate snapshots through this mask.
    #[must_use]
    pub fn without_memo_meta(&self) -> PipelineStats {
        let mut values = self.values;
        values[Counter::MemoHit as usize] = 0;
        values[Counter::MemoMiss as usize] = 0;
        values[Counter::MemoBytes as usize] = 0;
        PipelineStats { values }
    }

    /// Total splinters generated across both exact elimination modes.
    pub fn splinters(&self) -> u64 {
        self.get(Counter::SplintersGenerated)
    }

    /// The Faulhaber degree histogram as `(degree-label, count)` pairs.
    pub fn faulhaber_histogram(&self) -> [(&'static str, u64); 5] {
        [
            ("0", self.get(Counter::FaulhaberDeg0)),
            ("1", self.get(Counter::FaulhaberDeg1)),
            ("2", self.get(Counter::FaulhaberDeg2)),
            ("3", self.get(Counter::FaulhaberDeg3)),
            ("4+", self.get(Counter::FaulhaberDegHi)),
        ]
    }

    /// A compact one-line `name=value` listing of the nonzero counters,
    /// suitable for table cells. Empty string when nothing fired.
    pub fn brief(&self) -> String {
        let mut out = String::new();
        for (c, v) in self.nonzero() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(c.name());
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }

    /// All counters (zero included) as one JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for c in Counter::ALL {
            obj.field_u64(c.name(), self.get(c));
        }
        obj.finish()
    }

    /// Only the nonzero counters as one JSON object (in declaration
    /// order). Row-oriented reports pair this with a schema header
    /// listing [`Counter::ALL`], so diffs track signal, not permanent
    /// zeros.
    pub fn to_json_nonzero(&self) -> String {
        let mut obj = JsonObject::new();
        for (c, v) in self.nonzero() {
            obj.field_u64(c.name(), v);
        }
        obj.finish()
    }
}

impl fmt::Display for PipelineStats {
    /// One `name = value` line per nonzero counter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(all counters zero)");
        }
        let width = self
            .nonzero()
            .map(|(c, _)| c.name().len())
            .max()
            .unwrap_or(0);
        for (c, v) in self.nonzero() {
            writeln!(f, "{:width$} = {v}", c.name())?;
        }
        Ok(())
    }
}
