//! A hand-rolled JSON writer (the workspace has a no-external-deps
//! policy, so no serde). Only what the trace output needs: objects,
//! arrays, strings with escaping, integers, and floats.

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incrementally builds one JSON object.
#[derive(Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, name: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        self.body.push_str(&escape(name));
        self.body.push_str("\":");
    }

    /// Adds `"name": 123`.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds `"name": 1.25` (non-finite values become `null`).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            self.body.push_str(&format!("{value}"));
        } else {
            self.body.push_str("null");
        }
        self
    }

    /// Adds `"name": true`.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds `"name": "escaped value"`.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.body.push('"');
        self.body.push_str(&escape(value));
        self.body.push('"');
        self
    }

    /// Adds `"name": <value>` where `value` is already valid JSON.
    pub fn field_raw(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.body.push_str(value);
        self
    }

    /// Closes the object and returns it.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Joins already-serialized JSON values into an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut body = String::new();
    for item in items {
        if !body.is_empty() {
            body.push(',');
        }
        body.push_str(&item);
    }
    format!("[{body}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_building() {
        let mut o = JsonObject::new();
        o.field_str("name", "x\"y");
        o.field_u64("n", 7);
        o.field_f64("t", 1.5);
        o.field_bool("ok", true);
        o.field_raw("list", &array(vec!["1".into(), "2".into()]));
        assert_eq!(
            o.finish(),
            r#"{"name":"x\"y","n":7,"t":1.5,"ok":true,"list":[1,2]}"#
        );
    }
}
