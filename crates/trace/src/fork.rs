//! Fork/merge protocol for worker threads.
//!
//! All collection state in this crate is `thread_local!`, so work done
//! on a worker thread would silently vanish from the parent's counters
//! and span tree. The protocol here carries it across the join:
//!
//! 1. the parent calls [`fork_scope`] *before* spawning, capturing
//!    whether counting/tracing/memoization are enabled (a [`ForkScope`]
//!    is `Clone` + `Send` — a few booleans plus, when memoization is
//!    on, an `Arc`-shallow snapshot of the parent's memo table so
//!    workers start warm);
//! 2. each worker calls [`ForkScope::begin`] once, which enables the
//!    same collection modes on the worker thread, plants the memo
//!    seed, and snapshots a baseline;
//! 3. when the worker is done it calls [`ForkHandle::finish`], yielding
//!    a `Send`-able [`ForkPart`] with the counter deltas, the span
//!    subtree, and the memo entries collected on that thread;
//! 4. after joining, the parent calls [`merge_fork_part`] on each part:
//!    running counts are added, gauges take the high-water mark, span
//!    roots are grafted under the parent's innermost open span, and
//!    memo entries are inserted if absent (equal keys hold equal
//!    values, so insertion order is immaterial).
//!
//! When collection is disabled every step is a few boolean moves — no
//! snapshot, no allocation — so spawning workers costs nothing on the
//! disabled path (the `overhead_smoke` gate measures this).

use crate::counters::{self, PipelineStats};
use crate::memo::{self, MemoPart, MemoSeed};
use crate::span::{self, SpanTree};

/// A parent thread's collection state, captured for handing to workers.
#[derive(Clone, Debug)]
pub struct ForkScope {
    counting: bool,
    tracing: bool,
    memo: bool,
    seed: Option<MemoSeed>,
}

/// Captures the current thread's collection state so worker threads can
/// inherit it. Cheap (a few thread-local boolean loads) when collection
/// and memoization are off; with memoization on it also snapshots the
/// parent's memo table (one `Arc` clone per entry).
pub fn fork_scope() -> ForkScope {
    let memo = crate::memo_enabled();
    ForkScope {
        counting: crate::counting(),
        tracing: crate::tracing(),
        memo,
        seed: if memo { memo::seed() } else { None },
    }
}

impl ForkScope {
    /// Called once on the worker thread: enables the parent's
    /// collection modes there, plants the memo seed, and snapshots the
    /// baseline the final delta is taken against.
    pub fn begin(self) -> ForkHandle {
        let baseline = if self.counting {
            crate::enable_counters(true);
            Some(counters::snapshot())
        } else {
            None
        };
        if self.tracing {
            crate::enable_tracing(true);
        }
        if self.memo {
            crate::set_memo_enabled(true);
            if let Some(seed) = &self.seed {
                memo::plant(seed);
            }
        }
        ForkHandle {
            tracing: self.tracing,
            memo: self.memo,
            baseline,
        }
    }
}

/// A worker thread's live collection session (not `Send`; stays on the
/// worker).
pub struct ForkHandle {
    tracing: bool,
    memo: bool,
    baseline: Option<PipelineStats>,
}

impl ForkHandle {
    /// Closes the session: takes what the worker collected and turns
    /// collection back off on the worker thread.
    pub fn finish(self) -> ForkPart {
        let counters = self.baseline.map(|base| {
            let delta = counters::snapshot().delta(&base);
            crate::enable_counters(false);
            delta
        });
        let spans = if self.tracing {
            crate::enable_tracing(false);
            Some(span::take_tree())
        } else {
            None
        };
        let memo = if self.memo {
            crate::set_memo_enabled(false);
            memo::take_part()
        } else {
            None
        };
        ForkPart {
            counters,
            spans,
            memo,
        }
    }
}

/// What one worker thread measured; `Send` it back to the parent and
/// apply with [`merge_fork_part`].
#[derive(Debug, Default)]
pub struct ForkPart {
    counters: Option<PipelineStats>,
    spans: Option<SpanTree>,
    memo: Option<MemoPart>,
}

impl ForkPart {
    /// True when the worker collected nothing (collection was off).
    pub fn is_empty(&self) -> bool {
        self.counters.is_none() && self.spans.is_none() && self.memo.is_none()
    }
}

/// Merges a worker's measurements into the current thread's collectors:
/// counts are added, gauges raised to the worker's high-water mark, the
/// worker's span roots become children of the innermost open span (or
/// new roots when none is open), and memo entries are folded into this
/// thread's local memo tier.
pub fn merge_fork_part(part: ForkPart) {
    if let Some(stats) = part.counters {
        counters::merge(&stats);
    }
    if let Some(tree) = part.spans {
        span::merge_tree(tree);
    }
    if let Some(entries) = part.memo {
        memo::merge_part(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;

    #[test]
    fn worker_counters_merge_into_parent() {
        crate::enable_counters(true);
        crate::reset();
        crate::bump(Counter::GistCalls);
        let scope = fork_scope();
        let part = std::thread::scope(|s| {
            s.spawn(move || {
                let h = scope.begin();
                crate::bump(Counter::GistCalls);
                crate::add(Counter::SplintersGenerated, 3);
                crate::record_max(Counter::MaxCoeffBits, 128);
                h.finish()
            })
            .join()
            .unwrap()
        });
        merge_fork_part(part);
        let stats = crate::snapshot();
        assert_eq!(stats.get(Counter::GistCalls), 2);
        assert_eq!(stats.get(Counter::SplintersGenerated), 3);
        assert_eq!(stats.get(Counter::MaxCoeffBits), 128);
        crate::enable_counters(false);
    }

    #[test]
    fn worker_spans_graft_under_open_span() {
        crate::enable_tracing(true);
        span::reset();
        let tree = {
            let _outer = crate::span("parent work");
            let scope = fork_scope();
            let part = std::thread::scope(|s| {
                s.spawn(move || {
                    let h = scope.begin();
                    {
                        let _inner = crate::span("worker task");
                        crate::explain(|| "computed on a worker".to_string());
                    }
                    h.finish()
                })
                .join()
                .unwrap()
            });
            merge_fork_part(part);
            drop(_outer);
            span::take_tree()
        };
        crate::enable_tracing(false);
        assert_eq!(tree.roots.len(), 1);
        let parent = &tree.roots[0];
        assert_eq!(parent.label, "parent work");
        assert_eq!(parent.children.len(), 1);
        assert_eq!(parent.children[0].label, "worker task");
        assert_eq!(parent.children[0].events, ["computed on a worker"]);
    }

    #[test]
    fn nested_fork_scopes_merge_gauges_max_of_max() {
        // Three levels: parent → mid worker → leaf worker. Each level
        // raises the same gauge to a different value and bumps the same
        // running count. After both merges the count is the sum across
        // all levels while the gauge is the max over every level's
        // high-water mark (max-of-max) — merging must not add gauges and
        // must not let an inner merge mask an outer maximum.
        crate::enable_counters(true);
        crate::reset();
        crate::bump(Counter::GistCalls);
        crate::record_max(Counter::MaxCoeffBits, 64);
        crate::record_max(Counter::SumDepth, 9);
        let scope = fork_scope();
        let part = std::thread::scope(|s| {
            s.spawn(move || {
                let h = scope.begin();
                crate::bump(Counter::GistCalls);
                crate::record_max(Counter::MaxCoeffBits, 32); // below the leaf's
                crate::record_max(Counter::SumDepth, 2);
                let inner_scope = fork_scope();
                let inner = std::thread::scope(|s2| {
                    s2.spawn(move || {
                        let h2 = inner_scope.begin();
                        crate::bump(Counter::GistCalls);
                        crate::record_max(Counter::MaxCoeffBits, 200); // global max
                        crate::record_max(Counter::SumDepth, 5);
                        h2.finish()
                    })
                    .join()
                    .unwrap()
                });
                // The mid worker folds the leaf's part into its own
                // session before finishing, exactly like the clause
                // pipeline does.
                merge_fork_part(inner);
                h.finish()
            })
            .join()
            .unwrap()
        });
        merge_fork_part(part);
        let stats = crate::snapshot();
        assert_eq!(stats.get(Counter::GistCalls), 3, "counts add across levels");
        assert_eq!(
            stats.get(Counter::MaxCoeffBits),
            200,
            "gauge is max-of-max: the leaf's 200 must survive two merges"
        );
        assert_eq!(
            stats.get(Counter::SumDepth),
            9,
            "gauge is max-of-max: the parent's own 9 must not be lowered"
        );
        crate::enable_counters(false);
    }

    #[test]
    fn memo_entries_flow_both_ways_across_a_fork() {
        use crate::memo::{self, MemoDomain};
        use std::sync::Arc;

        memo::clear_local();
        crate::set_memo_enabled(true);
        // Parent warms one entry, which the worker must see via the
        // seed; the worker records another, which the parent must see
        // after the merge.
        let g = memo::begin_record();
        let d = g.finish();
        memo::record(MemoDomain::Smith, b"parent", Arc::new(1u8), d, 1);
        let scope = fork_scope();
        let part = std::thread::scope(|s| {
            s.spawn(move || {
                let h = scope.begin();
                assert!(
                    memo::lookup(MemoDomain::Smith, b"parent").is_some(),
                    "worker starts warm from the parent's seed"
                );
                let g = memo::begin_record();
                let d = g.finish();
                memo::record(MemoDomain::Smith, b"worker", Arc::new(2u8), d, 1);
                h.finish()
            })
            .join()
            .unwrap()
        });
        assert!(!part.is_empty(), "worker carried memo entries back");
        merge_fork_part(part);
        assert!(
            memo::lookup(MemoDomain::Smith, b"worker").is_some(),
            "parent inherits the worker's entries after the join"
        );
        crate::set_memo_enabled(false);
        memo::clear_local();
    }

    #[test]
    fn disabled_fork_is_inert() {
        crate::enable_counters(false);
        crate::enable_tracing(false);
        crate::reset();
        let scope = fork_scope();
        let part = std::thread::scope(|s| {
            s.spawn(move || {
                let h = scope.begin();
                crate::bump(Counter::GistCalls); // still disabled on worker
                h.finish()
            })
            .join()
            .unwrap()
        });
        assert!(part.is_empty());
        merge_fork_part(part);
        assert_eq!(crate::snapshot().get(Counter::GistCalls), 0);
    }
}
