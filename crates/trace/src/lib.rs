//! Zero-dependency instrumentation for the presburger counting
//! pipeline: **counters**, **spans**, and **explain events**.
//!
//! Pugh's evaluation of the counting algorithm is fundamentally
//! *counter-based* — "2 splinters vs Tawbi's 3", "HP needs 9 rewrite
//! steps", "2^k−1 summations for inclusion–exclusion". This crate makes
//! those quantities observable without changing any algorithm:
//!
//! - [`counters`]: a thread-local [`Counter`] registry with a
//!   [`PipelineStats`] snapshot type. Collection is off by default;
//!   every hook is a single thread-local boolean load when disabled.
//! - [`span`]: an RAII span stack with monotonic timings, rendered as
//!   an indented tree or hand-rolled JSON (no serde).
//! - [`explain`][span::explain]: human-readable derivation steps
//!   attached to the innermost open span.
//! - [`metrics`]: process-wide serving metrics — lock-free log-bucketed
//!   histograms and `{verb, outcome}` counter families with Prometheus
//!   text exposition (the dual of the thread-local counters, for the
//!   many-threaded request path).
//!
//! Everything is per-thread: enabling collection on one thread does not
//! observe or perturb work on another. Worker threads hand their
//! measurements back to the spawning thread through the [`fork`]
//! protocol ([`fork_scope`] → [`ForkScope::begin`] →
//! [`ForkHandle::finish`] → [`merge_fork_part`]).
//!
//! # Example
//!
//! ```
//! use presburger_trace as trace;
//!
//! trace::enable_counters(true);
//! trace::reset();
//! trace::bump(trace::Counter::GistCalls);
//! trace::add(trace::Counter::DnfClausesIn, 3);
//! let stats = trace::snapshot();
//! assert_eq!(stats.get(trace::Counter::GistCalls), 1);
//! assert_eq!(stats.get(trace::Counter::DnfClausesIn), 3);
//! trace::enable_counters(false);
//! ```

pub mod counters;
pub mod fork;
pub mod govern;
pub mod json;
pub mod memo;
pub mod metrics;
pub mod shard;
pub mod span;

pub use counters::{Counter, PipelineStats};
pub use fork::{fork_scope, merge_fork_part, ForkHandle, ForkPart, ForkScope};
pub use memo::{MemoDomain, MemoStats};
pub use metrics::{Histogram, HistogramSnapshot, ReqOutcome, ReqVerb, RequestMetrics};
pub use span::{explain, span, span_dyn, SpanGuard, SpanTree};

use std::cell::Cell;

/// Counter collection is on for the current thread.
pub(crate) const FLAG_COUNTING: u8 = 1 << 0;
/// Span/explain collection is on for the current thread.
pub(crate) const FLAG_TRACING: u8 = 1 << 1;
/// A governed region ([`govern::install`]) is active on this thread:
/// counter hooks also charge its budgets.
pub(crate) const FLAG_GOVERNED: u8 = 1 << 2;
/// At least one [`memo::begin_record`] frame is open on this thread:
/// counter hooks also accumulate into the recording frames.
pub(crate) const FLAG_RECORDING: u8 = 1 << 3;
/// Sub-problem memoization ([`memo`]) is enabled for this thread
/// (installed by the counting entry points from `CountOptions.memo`).
pub(crate) const FLAG_MEMO: u8 = 1 << 4;

thread_local! {
    /// All per-thread instrumentation switches in one byte, so the
    /// disabled fast path of every hook is a single thread-local load.
    static FLAGS: Cell<u8> = const { Cell::new(0) };
}

#[inline]
fn flags() -> u8 {
    FLAGS.with(Cell::get)
}

pub(crate) fn set_flag(bit: u8, on: bool) {
    FLAGS.with(|f| {
        let v = f.get();
        f.set(if on { v | bit } else { v & !bit });
    });
}

/// Turns counter collection on or off for the current thread.
pub fn enable_counters(on: bool) {
    set_flag(FLAG_COUNTING, on);
}

/// Whether counters are being collected on the current thread.
#[inline]
pub fn counting() -> bool {
    flags() & FLAG_COUNTING != 0
}

/// Turns span/explain collection on or off for the current thread.
/// Spans allocate (labels, tree nodes), so they are gated separately
/// from the cheap counters.
pub fn enable_tracing(on: bool) {
    set_flag(FLAG_TRACING, on);
}

/// Whether spans and explain events are being collected on the current
/// thread.
#[inline]
pub fn tracing() -> bool {
    flags() & FLAG_TRACING != 0
}

/// Turns sub-problem memoization on or off for the current thread.
/// The counting entry points install this from `CountOptions.memo`;
/// code that never touches the option (direct `omega` calls, most
/// tests) keeps the default *off* and is entirely unaffected.
pub fn set_memo_enabled(on: bool) {
    set_flag(FLAG_MEMO, on);
}

/// Whether the memo flag is installed on the current thread. Note that
/// [`memo::active`] additionally requires the governed region (if any)
/// to be memo-safe.
#[inline]
pub fn memo_enabled() -> bool {
    flags() & FLAG_MEMO != 0
}

/// Marks whether any memo recording frame is open (managed by
/// [`memo::begin_record`] / `RecordGuard`).
pub(crate) fn set_recording(on: bool) {
    set_flag(FLAG_RECORDING, on);
}

/// Whether any counter observer is active on this thread (collection,
/// governance, or a memo recording frame). Used by the memo layer to
/// skip delta replay when nobody would see it.
#[inline]
pub(crate) fn any_observer() -> bool {
    flags() & (FLAG_COUNTING | FLAG_GOVERNED | FLAG_RECORDING) != 0
}

/// Adds 1 to `counter` (no-op unless [`enable_counters`] is on or a
/// governed region is installed).
#[inline]
pub fn bump(counter: Counter) {
    add(counter, 1);
}

/// Adds `n` to `counter`. Collected when [`enable_counters`] is on;
/// additionally charged against the installed [`govern`] region, if
/// any. A no-op (one thread-local load) when both are off.
#[inline]
pub fn add(counter: Counter, n: u64) {
    let f = flags();
    if f & (FLAG_COUNTING | FLAG_GOVERNED | FLAG_RECORDING) == 0 {
        return;
    }
    if f & FLAG_COUNTING != 0 {
        counters::add_raw(counter, n);
    }
    if f & FLAG_RECORDING != 0 {
        memo::on_add(counter, n);
    }
    // Charge the governor last: a charge may trip (unwind), and the
    // collected/recorded value must reflect the work that ran.
    if f & FLAG_GOVERNED != 0 {
        govern::charge(counter, n);
    }
}

/// Raises the gauge `counter` to `value` if it is currently lower.
/// Collected when [`enable_counters`] is on; additionally charged
/// against the installed [`govern`] region, if any.
#[inline]
pub fn record_max(counter: Counter, value: u64) {
    let f = flags();
    if f & (FLAG_COUNTING | FLAG_GOVERNED | FLAG_RECORDING) == 0 {
        return;
    }
    if f & FLAG_COUNTING != 0 {
        counters::max_raw(counter, value);
    }
    if f & FLAG_RECORDING != 0 {
        memo::on_gauge(counter, value);
    }
    if f & FLAG_GOVERNED != 0 {
        govern::charge_gauge(counter, value);
    }
}

/// A snapshot of every counter on the current thread.
pub fn snapshot() -> PipelineStats {
    counters::snapshot()
}

/// Zeroes every counter and discards any collected spans and explain
/// events on the current thread.
pub fn reset() {
    counters::reset();
    span::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_do_nothing() {
        enable_counters(false);
        reset();
        bump(Counter::GistCalls);
        add(Counter::DnfClausesIn, 7);
        record_max(Counter::MaxCoeffBits, 99);
        assert_eq!(snapshot().get(Counter::GistCalls), 0);
        assert_eq!(snapshot().get(Counter::DnfClausesIn), 0);
        assert_eq!(snapshot().get(Counter::MaxCoeffBits), 0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        enable_counters(true);
        reset();
        bump(Counter::SplintersGenerated);
        bump(Counter::SplintersGenerated);
        add(Counter::TawbiSplits, 3);
        record_max(Counter::MaxCoeffBits, 130);
        record_max(Counter::MaxCoeffBits, 90);
        let s = snapshot();
        assert_eq!(s.get(Counter::SplintersGenerated), 2);
        assert_eq!(s.get(Counter::TawbiSplits), 3);
        assert_eq!(s.get(Counter::MaxCoeffBits), 130);
        reset();
        assert_eq!(snapshot().get(Counter::SplintersGenerated), 0);
        enable_counters(false);
    }

    #[test]
    fn delta_subtracts_counts_but_keeps_gauges() {
        enable_counters(true);
        reset();
        bump(Counter::GistCalls);
        let before = snapshot();
        bump(Counter::GistCalls);
        bump(Counter::GistCalls);
        record_max(Counter::MaxCoeffBits, 200);
        let after = snapshot();
        let d = after.delta(&before);
        assert_eq!(d.get(Counter::GistCalls), 2);
        assert_eq!(d.get(Counter::MaxCoeffBits), 200);
        enable_counters(false);
    }

    #[test]
    fn spans_render_as_a_tree() {
        enable_tracing(true);
        span::reset();
        {
            let _outer = span("simplify");
            explain(|| "3 clauses in".to_string());
            {
                let _inner = span_dyn(|| "eliminate x".to_string());
            }
        }
        let tree = span::take_tree();
        let text = tree.render();
        assert!(text.contains("simplify"), "tree was: {text}");
        assert!(text.contains("eliminate x"), "tree was: {text}");
        assert!(text.contains("3 clauses in"), "tree was: {text}");
        let js = tree.to_json();
        assert!(js.contains("\"label\":\"simplify\""), "json was: {js}");
        enable_tracing(false);
    }

    #[test]
    fn stats_json_is_wellformed_enough() {
        enable_counters(true);
        reset();
        bump(Counter::EliminateDark);
        let js = snapshot().to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"eliminate_dark\":1"), "json was: {js}");
        enable_counters(false);
    }
}
