//! The differential harness: runs one generated (or replayed) case
//! through five independent oracle/metamorphic families.
//!
//! 1. **Brute force** — the engine's count of `A ∨ B`, evaluated at
//!    concrete parameter points, must equal exhaustive enumeration
//!    over the case's box ([`crate::oracle`]).
//! 2. **Metamorphic laws** — inclusion–exclusion
//!    (`|A∪B| = |A| + |B| − |A∩B|`), invariance under variable
//!    renaming, and invariance under integer translation
//!    ([`crate::metamorphic`]).
//! 3. **Robustness** — byte-identical answers at 1 and 4 worker
//!    threads, and governed runs under random budgets must satisfy
//!    `lower ≤ exact ≤ upper` for every [`Outcome::Bounded`].
//! 4. **Baselines** — on their supported fragment, the Tawbi and
//!    Haghighat–Polychronopoulos baselines are exact single sums, so
//!    they must equal (and in particular never fall below) the
//!    engine's exact count.
//! 5. **Memo transparency** — recounting with the sub-problem memo
//!    disabled, and again over the warmed table, must render answers
//!    byte-identical to each other. A stale or mis-keyed memo entry
//!    surfaces here as a direct diff instead of downstream value drift.
//!
//! Every engine call runs under a [`Governor`] wall-clock deadline, so
//! a pathological case degrades (and is skipped) rather than hanging
//! the gate. Setting `PRESBURGER_GEN_FAULT=count_off_by_one` or
//! `=miscount_stride` injects a deliberate bug into the engine-side
//! answer; the harness must then detect it and the shrinker must
//! minimize it — that closed loop is asserted by `scripts/check.sh`.

use crate::grammar::GenCase;
use crate::metamorphic;
use crate::oracle;
use crate::rng::Rng;
use presburger_arith::{Int, Rat};
use presburger_baselines::hp::hp_sum_once;
use presburger_baselines::tawbi::tawbi_sum;
use presburger_counting::{
    try_count_solutions, try_count_solutions_governed, Budgets, CountError, CountOptions, Governor,
    Outcome,
};
use presburger_omega::{Affine, Conjunct, Constraint, Formula, Space, VarId};
use presburger_polyq::mexpr::MExpr;
use presburger_polyq::QPoly;
use std::time::Duration;

/// A deliberately injected engine-side bug (`PRESBURGER_GEN_FAULT`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Every engine count is reported one too high.
    CountOffByOne,
    /// Counts of formulas containing a stride atom are one too high.
    MiscountStride,
}

impl Fault {
    /// Parses a fault name (`count_off_by_one` | `miscount_stride`).
    pub fn parse(s: &str) -> Option<Fault> {
        match s.trim() {
            "count_off_by_one" => Some(Fault::CountOffByOne),
            "miscount_stride" => Some(Fault::MiscountStride),
            _ => None,
        }
    }

    /// Reads `PRESBURGER_GEN_FAULT`. Unknown names panic, so a typo in
    /// a CI matrix cannot silently disable the check.
    pub fn from_env() -> Option<Fault> {
        match std::env::var("PRESBURGER_GEN_FAULT") {
            Ok(s) if !s.trim().is_empty() => Some(
                Fault::parse(&s)
                    .unwrap_or_else(|| panic!("unknown PRESBURGER_GEN_FAULT value {s:?}")),
            ),
            _ => None,
        }
    }

    fn applies_to(&self, f: &Formula) -> bool {
        match self {
            Fault::CountOffByOne => true,
            Fault::MiscountStride => {
                let mut found = false;
                f.for_each_atom(&mut |c| {
                    if matches!(c, Constraint::Stride(..)) {
                        found = true;
                    }
                });
                found
            }
        }
    }
}

/// Harness configuration shared by all families.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Wall-clock deadline for each engine call (via the Governor).
    pub deadline: Duration,
    /// Injected engine-side bug, if any.
    pub fault: Option<Fault>,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness {
            deadline: Duration::from_secs(2),
            fault: None,
        }
    }
}

impl Harness {
    /// Default deadline plus the fault from `PRESBURGER_GEN_FAULT`.
    pub fn from_env() -> Harness {
        Harness {
            fault: Fault::from_env(),
            ..Harness::default()
        }
    }
}

/// The random budget configuration family 3 stresses a case with.
#[derive(Clone, Debug)]
pub struct BudgetChoice {
    /// The budgets handed to the Governor.
    pub budgets: Budgets,
}

impl BudgetChoice {
    /// Draws a random budget mix (kept fixed while shrinking a case).
    pub fn draw(rng: &mut Rng) -> BudgetChoice {
        fn opt(rng: &mut Rng, menu: &[u64]) -> Option<u64> {
            if rng.chance(1, 2) {
                None
            } else {
                Some(menu[rng.below(menu.len() as u64) as usize])
            }
        }
        BudgetChoice {
            budgets: Budgets {
                deadline: Some(Duration::from_millis(rng.range(50, 500) as u64)),
                max_splinters: opt(rng, &[0, 1, 2, 8, 64]),
                max_dnf_clauses: opt(rng, &[1, 2, 8, 64]),
                max_depth: opt(rng, &[1, 2, 4, 8]),
                max_pieces: opt(rng, &[1, 4, 16, 64]),
                max_coeff_bits: opt(rng, &[64, 128]),
            },
        }
    }
}

/// A reported failure: which family, which kind, and the full story.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Oracle family: `brute`, `metamorphic`, `robustness`, `baseline`.
    pub family: &'static str,
    /// Failure kind within the family (`mismatch`, `ie`, `rename`,
    /// `translate`, `determinism`, `bracket`, `engine-error`, …).
    pub kind: &'static str,
    /// Human-readable details (bindings, values, formula text).
    pub detail: String,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}/{}] {}", self.family, self.kind, self.detail)
    }
}

/// The engine's answer for one formula across all parameter points.
enum Engine {
    /// Exact values, one per binding, with any injected fault applied.
    Values(Vec<i64>),
    /// Budget/deadline degradation — family skipped for this formula.
    Skipped,
}

/// Concrete parameter points: one vector of `(name, value)` per point.
fn bindings(space: &Space, symbols: &[VarId]) -> Vec<Vec<(String, i64)>> {
    match symbols.len() {
        0 => vec![Vec::new()],
        1 => (-3i64..=4)
            .map(|v| vec![(space.name(symbols[0]).to_string(), v)])
            .collect(),
        _ => {
            // Cross the first two symbols over a smaller grid; further
            // symbols (the generator makes at most two) would get 0.
            let mut out = Vec::new();
            for a in -2i64..=2 {
                for b in -2i64..=2 {
                    let mut bind: Vec<(String, i64)> = symbols
                        .iter()
                        .skip(2)
                        .map(|s| (space.name(*s).to_string(), 0))
                        .collect();
                    bind.push((space.name(symbols[0]).to_string(), a));
                    bind.push((space.name(symbols[1]).to_string(), b));
                    out.push(bind);
                }
            }
            out
        }
    }
}

fn as_refs(bind: &[(String, i64)]) -> Vec<(&str, i64)> {
    bind.iter().map(|(n, v)| (n.as_str(), *v)).collect()
}

/// Runs the engine (governed by the harness deadline) on `f` and
/// evaluates at every binding, applying any injected fault.
fn engine_counts(
    h: &Harness,
    space: &Space,
    f: &Formula,
    vars: &[VarId],
    binds: &[Vec<(String, i64)>],
    family: &'static str,
) -> Result<Engine, CaseFailure> {
    let gov = Governor::new(Budgets {
        deadline: Some(h.deadline),
        ..Budgets::unlimited()
    });
    let outcome = try_count_solutions_governed(space, f, vars, &CountOptions::default(), &gov);
    let sym = match outcome {
        Ok(Outcome::Exact(sym)) => sym,
        Ok(Outcome::Bounded { .. }) => {
            return Ok(Engine::Skipped);
        }
        Err(e)
            if e.is_degradable()
                || matches!(e, CountError::Deadline { .. } | CountError::TooComplex(_)) =>
        {
            return Ok(Engine::Skipped);
        }
        Err(e) => {
            return Err(CaseFailure {
                family,
                kind: "engine-error",
                detail: format!("engine failed on {}: {e}", f.to_string(space)),
            });
        }
    };
    let nudge = i64::from(h.fault.map(|ft| ft.applies_to(f)).unwrap_or(false));
    let mut vals = Vec::with_capacity(binds.len());
    for bind in binds {
        match sym.try_eval_i64(&as_refs(bind)) {
            Ok(v) => vals.push(v + nudge),
            Err(e) => {
                return Err(CaseFailure {
                    family,
                    kind: "engine-error",
                    detail: format!(
                        "non-integral/uneval answer at {bind:?} for {}: {e}",
                        f.to_string(space)
                    ),
                });
            }
        }
    }
    Ok(Engine::Values(vals))
}

/// Checks one case against all four families. `Ok(())` means every
/// applicable check passed (inapplicable/over-budget checks skip).
pub fn check_case(case: &GenCase, h: &Harness, budgets: &BudgetChoice) -> Result<(), CaseFailure> {
    let binds = bindings(&case.space, &case.symbols);
    let union = case.union();

    let eu = engine_counts(h, &case.space, &union, &case.vars, &binds, "brute")?;

    family_brute(case, h, &binds, &union, &eu)?;
    family_metamorphic(case, h, &binds, &union, &eu)?;
    family_robustness(case, h, budgets, &binds, &union, &eu)?;
    family_baseline(case, h, &binds)?;
    family_memo(case, h, &union, &eu)?;
    Ok(())
}

/// Family 5: memo transparency. Recounts the union with the memo
/// explicitly disabled, then again with it armed over the (now warm)
/// thread-local table, and demands the two rendered answers be
/// byte-identical. Generated cases are heavy on shared stride/coefficient
/// structure, so the warm pass is served largely from the table — a
/// stale or mis-keyed entry shows up as a direct rendering diff.
fn family_memo(
    case: &GenCase,
    h: &Harness,
    union: &Formula,
    eu: &Engine,
) -> Result<(), CaseFailure> {
    let fam = "memo";
    if !matches!(eu, Engine::Values(_)) {
        return Ok(());
    }
    let run = |memo: bool| {
        let gov = Governor::new(Budgets {
            deadline: Some(h.deadline),
            ..Budgets::unlimited()
        });
        let opts = CountOptions {
            memo,
            ..CountOptions::default()
        };
        try_count_solutions_governed(&case.space, union, &case.vars, &opts, &gov)
    };
    let render =
        |o: Result<Outcome, CountError>, label: &str| -> Result<Option<String>, CaseFailure> {
            match o {
                Ok(Outcome::Exact(sym)) => Ok(Some(sym.to_display_string())),
                // Deadline luck can differ between the passes; a degraded
                // pass makes the comparison inapplicable, not a failure.
                Ok(Outcome::Bounded { .. }) => Ok(None),
                Err(e)
                    if e.is_degradable()
                        || matches!(e, CountError::Deadline { .. } | CountError::TooComplex(_)) =>
                {
                    Ok(None)
                }
                Err(e) => Err(CaseFailure {
                    family: fam,
                    kind: "engine-error",
                    detail: format!(
                        "{label} recount failed on {}: {e}",
                        union.to_string(&case.space)
                    ),
                }),
            }
        };
    let off = render(run(false), "memo-off")?;
    let warm = render(run(true), "memo-warm")?;
    if let (Some(a), Some(b)) = (&off, &warm) {
        if a != b {
            return Err(CaseFailure {
                family: fam,
                kind: "mismatch",
                detail: format!("memo-off={a} memo-warm={b}\n{}", case.describe()),
            });
        }
    }
    Ok(())
}

fn family_brute(
    case: &GenCase,
    _h: &Harness,
    binds: &[Vec<(String, i64)>],
    union: &Formula,
    eu: &Engine,
) -> Result<(), CaseFailure> {
    let Engine::Values(vals) = eu else {
        return Ok(());
    };
    for (bind, &got) in binds.iter().zip(vals) {
        let sym = lookup_fn(&case.space, bind);
        let brute = oracle::brute_force(union, &case.vars, case.brute_range(), &sym) as i64;
        if got != brute {
            return Err(CaseFailure {
                family: "brute",
                kind: "mismatch",
                detail: format!(
                    "engine={got} brute={brute} at {bind:?}\n{}",
                    case.describe()
                ),
            });
        }
    }
    Ok(())
}

fn family_metamorphic(
    case: &GenCase,
    h: &Harness,
    binds: &[Vec<(String, i64)>],
    union: &Formula,
    eu: &Engine,
) -> Result<(), CaseFailure> {
    let fam = "metamorphic";
    // Inclusion–exclusion: |A∪B| = |A| + |B| − |A∩B|.
    let inter = Formula::and(vec![case.body_a.clone(), case.body_b.clone()]);
    let ea = engine_counts(h, &case.space, &case.body_a, &case.vars, binds, fam)?;
    let eb = engine_counts(h, &case.space, &case.body_b, &case.vars, binds, fam)?;
    let ei = engine_counts(h, &case.space, &inter, &case.vars, binds, fam)?;
    if let (Engine::Values(u), Engine::Values(a), Engine::Values(b), Engine::Values(i)) =
        (eu, &ea, &eb, &ei)
    {
        for (k, bind) in binds.iter().enumerate() {
            if u[k] != a[k] + b[k] - i[k] {
                return Err(CaseFailure {
                    family: fam,
                    kind: "ie",
                    detail: format!(
                        "|A∪B|={} but |A|+|B|−|A∩B|={}+{}−{} at {bind:?}\n{}",
                        u[k],
                        a[k],
                        b[k],
                        i[k],
                        case.describe()
                    ),
                });
            }
        }
    }
    let Engine::Values(uvals) = eu else {
        return Ok(());
    };
    // Renaming invariance.
    let r = metamorphic::rename_free(&case.space, union, &case.vars, &case.symbols);
    let rbinds: Vec<Vec<(String, i64)>> = binds
        .iter()
        .map(|b| b.iter().map(|(n, v)| (format!("{n}_r"), *v)).collect())
        .collect();
    if let Engine::Values(rv) = engine_counts(h, &r.space, &r.formula, &r.vars, &rbinds, fam)? {
        for (k, bind) in binds.iter().enumerate() {
            if rv[k] != uvals[k] {
                return Err(CaseFailure {
                    family: fam,
                    kind: "rename",
                    detail: format!(
                        "renamed count {} != original {} at {bind:?}\n{}",
                        rv[k],
                        uvals[k],
                        case.describe()
                    ),
                });
            }
        }
    }
    // Translation invariance.
    let shifts: Vec<i64> = (0..case.vars.len()).map(|i| [3, -2, 5][i % 3]).collect();
    let t = metamorphic::translate(union, &case.vars, &shifts);
    if let Engine::Values(tv) = engine_counts(h, &case.space, &t, &case.vars, binds, fam)? {
        for (k, bind) in binds.iter().enumerate() {
            if tv[k] != uvals[k] {
                return Err(CaseFailure {
                    family: fam,
                    kind: "translate",
                    detail: format!(
                        "translated count {} != original {} at {bind:?} (shifts {shifts:?})\n{}",
                        tv[k],
                        uvals[k],
                        case.describe()
                    ),
                });
            }
        }
    }
    Ok(())
}

fn family_robustness(
    case: &GenCase,
    h: &Harness,
    bc: &BudgetChoice,
    binds: &[Vec<(String, i64)>],
    union: &Formula,
    eu: &Engine,
) -> Result<(), CaseFailure> {
    let fam = "robustness";
    // Only exercise this family when the deadline-governed engine run
    // finished comfortably — the ungoverned determinism comparison
    // below must not hang on a pathological case.
    let Engine::Values(exact) = eu else {
        return Ok(());
    };
    // Thread-count determinism: byte-identical display at 1 vs 4.
    let run = |threads: usize| {
        try_count_solutions(
            &case.space,
            union,
            &case.vars,
            &CountOptions {
                threads,
                ..CountOptions::default()
            },
        )
    };
    match (run(1), run(4)) {
        (Ok(s1), Ok(s4)) => {
            if s1.to_display_string() != s4.to_display_string() {
                return Err(CaseFailure {
                    family: fam,
                    kind: "determinism",
                    detail: format!(
                        "threads=1 and threads=4 disagree:\n  {}\n  {}\n{}",
                        s1.to_display_string(),
                        s4.to_display_string(),
                        case.describe()
                    ),
                });
            }
        }
        (Err(_), Err(_)) => {}
        (a, b) => {
            return Err(CaseFailure {
                family: fam,
                kind: "determinism",
                detail: format!(
                    "threads=1 ok={} but threads=4 ok={}\n{}",
                    a.is_ok(),
                    b.is_ok(),
                    case.describe()
                ),
            });
        }
    }
    // Governed bracketing: any Bounded outcome under random budgets
    // must bracket the exact answer.
    let gov = Governor::new(bc.budgets);
    match try_count_solutions_governed(
        &case.space,
        union,
        &case.vars,
        &CountOptions::default(),
        &gov,
    ) {
        Ok(Outcome::Exact(sym)) => {
            let nudge = i64::from(h.fault.map(|ft| ft.applies_to(union)).unwrap_or(false));
            for (k, bind) in binds.iter().enumerate() {
                let got = sym.try_eval_i64(&as_refs(bind)).map(|v| v + nudge).ok();
                if got != Some(exact[k]) {
                    return Err(CaseFailure {
                        family: fam,
                        kind: "governed-exact",
                        detail: format!(
                            "governed Exact {:?} != ungoverned {} at {bind:?}\n{}",
                            got,
                            exact[k],
                            case.describe()
                        ),
                    });
                }
            }
        }
        Ok(Outcome::Bounded { lower, upper, .. }) => {
            for (k, bind) in binds.iter().enumerate() {
                let refs = as_refs(bind);
                let lo = lower.eval_rat(&refs);
                let hi = upper.eval_rat(&refs);
                let ex = Rat::from(exact[k]);
                if !(lo <= ex && ex <= hi) {
                    return Err(CaseFailure {
                        family: fam,
                        kind: "bracket",
                        detail: format!(
                            "Bounded {lo} ≤ {ex} ≤ {hi} violated at {bind:?} under {:?}\n{}",
                            bc.budgets,
                            case.describe()
                        ),
                    });
                }
            }
        }
        Err(e)
            if e.is_degradable()
                || matches!(e, CountError::Deadline { .. } | CountError::TooComplex(_)) => {}
        Err(e) => {
            return Err(CaseFailure {
                family: fam,
                kind: "engine-error",
                detail: format!("governed run failed structurally: {e}\n{}", case.describe()),
            });
        }
    }
    Ok(())
}

fn family_baseline(
    case: &GenCase,
    h: &Harness,
    binds: &[Vec<(String, i64)>],
) -> Result<(), CaseFailure> {
    let fam = "baseline";
    for body in [&case.body_a, &case.body_b] {
        let Some(conj) = tawbi_fragment(body, &case.vars) else {
            continue;
        };
        let Engine::Values(exact) = engine_counts(h, &case.space, body, &case.vars, binds, fam)?
        else {
            continue;
        };
        // Tawbi is exact on this fragment, so "never below the exact
        // count" sharpens to equality. The fragment check above is
        // syntactic; `tawbi_sum`'s own asserts are the final authority
        // (e.g. a tight box can normalize `lo ≤ x ≤ hi` into an
        // equality, leaving no `≥` bounds), so a panic means "out of
        // fragment" and skips the baseline for this body.
        let mut s2 = case.space.clone();
        let r = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tawbi_sum(&conj, &case.vars, &QPoly::one(), &mut s2)
        })) {
            Ok(r) => r,
            Err(_) => continue,
        };
        for (k, bind) in binds.iter().enumerate() {
            let tv = r.value.eval(&s2, &lookup_fn(&s2, bind));
            if tv != Rat::from(exact[k]) {
                return Err(CaseFailure {
                    family: fam,
                    kind: "tawbi",
                    detail: format!(
                        "tawbi={} engine={} at {bind:?} for {}\n{}",
                        tv,
                        exact[k],
                        body.to_string(&case.space),
                        case.describe()
                    ),
                });
            }
        }
        // Haghighat–Polychronopoulos: single-variable affine bounds.
        if case.vars.len() == 1 {
            let x = case.vars[0];
            if let Some((lo, hi)) = hp_fragment(&conj, x) {
                let hp = hp_sum_once(&lo, &hi, &[MExpr::int(1)]);
                for (k, bind) in binds.iter().enumerate() {
                    let hv = hp.expr.eval(&lookup_fn(&case.space, bind));
                    if hv != Rat::from(exact[k]) {
                        return Err(CaseFailure {
                            family: fam,
                            kind: "hp",
                            detail: format!(
                                "hp={} engine={} at {bind:?} for {}\n{}",
                                hv,
                                exact[k],
                                body.to_string(&case.space),
                                case.describe()
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// The symbol-assignment closure for a binding: resolves a variable's
/// name in `space` against the bound parameter values (counted vars
/// are supplied elsewhere; anything reaching this must be bound).
fn lookup_fn<'a>(space: &'a Space, bind: &'a [(String, i64)]) -> impl Fn(VarId) -> Int + 'a {
    move |v: VarId| {
        let name = space.name(v);
        bind.iter()
            .find(|(n, _)| n == name)
            .map(|(_, val)| Int::from(*val))
            .unwrap_or_else(|| panic!("no binding for {name}"))
    }
}

/// If `f` is a pure conjunction of `≥` atoms with unit coefficients on
/// every counted variable, and every counted variable has both a lower
/// and an upper bound, returns the conjunct Tawbi supports.
fn tawbi_fragment(f: &Formula, vars: &[VarId]) -> Option<Conjunct> {
    let mut atoms = Vec::new();
    if !collect_ges(f, &mut atoms) {
        return None;
    }
    for &v in vars {
        let mut has_lo = false;
        let mut has_hi = false;
        for e in &atoms {
            let c = e.coeff(v);
            match c.to_i64() {
                Some(0) => {}
                Some(1) => has_lo = true,
                Some(-1) => has_hi = true,
                _ => return None, // non-unit coefficient
            }
        }
        if !(has_lo && has_hi) {
            return None;
        }
    }
    let mut c = Conjunct::new();
    for e in atoms {
        c.add_geq(e);
    }
    Some(c)
}

fn collect_ges(f: &Formula, out: &mut Vec<Affine>) -> bool {
    match f {
        Formula::True => true,
        Formula::Atom(Constraint::Ge(e)) => {
            out.push(e.clone());
            true
        }
        Formula::And(fs) => fs.iter().all(|g| collect_ges(g, out)),
        _ => false,
    }
}

/// If every atom of the conjunct mentions `x` (with unit coefficient),
/// returns HP's `(max of lower bounds, min of upper bounds)` as
/// min/max expressions over the symbols.
fn hp_fragment(c: &Conjunct, x: VarId) -> Option<(MExpr, MExpr)> {
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    for e in c.geqs() {
        let coeff = e.coeff(x).to_i64()?;
        let mut rest = e.clone();
        rest.set_coeff(x, Int::zero());
        match coeff {
            // x + rest ≥ 0  ⇔  x ≥ −rest
            1 => lowers.push(MExpr::from_affine(&(-rest))),
            // −x + rest ≥ 0  ⇔  x ≤ rest
            -1 => uppers.push(MExpr::from_affine(&rest)),
            _ => return None, // pure-symbol atom or non-unit: out of fragment
        }
    }
    let fold = |mut v: Vec<MExpr>, max: bool| -> Option<MExpr> {
        let mut acc = v.pop()?;
        while let Some(e) = v.pop() {
            acc = if max {
                MExpr::max2(acc, e)
            } else {
                MExpr::min2(acc, e)
            };
        }
        Some(acc)
    };
    Some((fold(lowers, true)?, fold(uppers, false)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate, GenConfig};

    fn smoke(seed: u64, n: u64, fault: Option<Fault>) -> usize {
        let h = Harness {
            fault,
            ..Harness::default()
        };
        let cfg = GenConfig::default();
        let mut failures = 0;
        for i in 0..n {
            let mut rng = Rng::new(seed).fork(i);
            let case = generate(&mut rng, &cfg);
            let bc = BudgetChoice::draw(&mut rng);
            if check_case(&case, &h, &bc).is_err() {
                failures += 1;
            }
        }
        failures
    }

    /// A small clean smoke run: every family passes on every case.
    #[test]
    fn clean_cases_pass_all_families() {
        assert_eq!(smoke(0xA5EED, 12, None), 0);
    }

    /// With an injected off-by-one, the harness catches it quickly.
    #[test]
    fn injected_fault_is_caught() {
        assert!(smoke(0xA5EED, 12, Some(Fault::CountOffByOne)) > 0);
    }
}
