//! Grammar-directed random generation of Presburger counting problems.
//!
//! A generated [`GenCase`] is *always* a sound differential-testing
//! subject:
//!
//! * every counted variable is conjoined with a concrete constant box,
//!   so the symbolic count is finite and brute-force enumeration over
//!   [`GenCase::range`] is exact;
//! * every quantified variable is bounded *inside* its quantifier
//!   (`∃q: -3 ≤ q ≤ 3 ∧ …` and `∀q: ¬(-3 ≤ q ≤ 3) ∨ …`), so the
//!   brute-force oracle can enumerate witnesses over the same range
//!   without missing any;
//! * symbolic parameters only ever appear with small coefficients, so
//!   evaluating at the harness's concrete parameter points keeps all
//!   satisfying points inside the box margin.
//!
//! Two independent bodies `A` and `B` are generated per case (each
//! including the box); the harness tests the union `A ∨ B` against
//! brute force and uses the pair for the inclusion–exclusion law
//! `|A∪B| = |A| + |B| − |A∩B|`.

use crate::rng::Rng;
use presburger_omega::{Affine, Formula, Space, VarId};

/// Size knobs for the generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of counted variables (at least 1 is used).
    pub max_vars: usize,
    /// Maximum number of symbolic parameters (0 is allowed).
    pub max_symbols: usize,
    /// Maximum connective/quantifier nesting depth of each body.
    pub max_depth: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_vars: 3,
            max_symbols: 2,
            max_depth: 3,
        }
    }
}

/// Bound (inclusive) of the box placed on every quantified variable.
pub const QUANT_BOX: i64 = 3;

/// One generated counting problem.
#[derive(Clone, Debug)]
pub struct GenCase {
    /// The variable space (counted vars, symbols, quantified vars).
    pub space: Space,
    /// The counted (free) variables.
    pub vars: Vec<VarId>,
    /// The symbolic parameters.
    pub symbols: Vec<VarId>,
    /// Body `A` — includes the bounding box on every counted variable.
    pub body_a: Formula,
    /// Body `B` — includes the same bounding box.
    pub body_b: Formula,
    /// Inclusive enumeration range for the brute-force oracle; covers
    /// every box (counted and quantified) with a margin.
    pub range: (i64, i64),
}

impl GenCase {
    /// The union `A ∨ B` — the formula the harness counts.
    pub fn union(&self) -> Formula {
        Formula::or(vec![self.body_a.clone(), self.body_b.clone()])
    }

    /// The brute-force range as a `RangeInclusive`.
    pub fn brute_range(&self) -> std::ops::RangeInclusive<i64> {
        self.range.0..=self.range.1
    }

    /// A human-readable description for failure reports.
    pub fn describe(&self) -> String {
        let names = |vs: &[VarId]| {
            vs.iter()
                .map(|v| self.space.name(*v).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "vars=[{}] symbols=[{}] range={}..={}\n  A: {}\n  B: {}",
            names(&self.vars),
            names(&self.symbols),
            self.range.0,
            self.range.1,
            self.body_a.to_string(&self.space),
            self.body_b.to_string(&self.space),
        )
    }
}

/// Generates one random case. Identical `(rng, cfg)` states generate
/// identical cases.
pub fn generate(rng: &mut Rng, cfg: &GenConfig) -> GenCase {
    let mut space = Space::new();
    let var_names = ["x", "y", "z", "w", "u", "v"];
    let sym_names = ["n", "m", "p"];
    let nv = 1 + rng.below(cfg.max_vars.clamp(1, var_names.len()) as u64) as usize;
    let ns = rng.below(cfg.max_symbols.min(sym_names.len()) as u64 + 1) as usize;
    let vars: Vec<VarId> = var_names[..nv].iter().map(|n| space.var(n)).collect();
    let symbols: Vec<VarId> = sym_names[..ns].iter().map(|n| space.symbol(n)).collect();

    let mut boxes = Vec::new();
    let mut box_parts = Vec::new();
    for &v in &vars {
        let lo = rng.range(-5, 1);
        let hi = lo + rng.range(0, 6);
        boxes.push((lo, hi));
        box_parts.push(Formula::between(
            Affine::constant(lo),
            v,
            Affine::constant(hi),
        ));
    }
    let box_f = Formula::and(box_parts);

    let mut gen = BodyGen { rng, qcount: 0 };
    let mut scope = vars.clone();
    let raw_a = gen.node(&mut space, &mut scope, &symbols, cfg.max_depth);
    let raw_b = gen.node(&mut space, &mut scope, &symbols, cfg.max_depth);
    let body_a = Formula::and(vec![box_f.clone(), raw_a]);
    let body_b = Formula::and(vec![box_f, raw_b]);

    let lo = boxes.iter().map(|b| b.0).min().unwrap_or(0).min(-QUANT_BOX) - 2;
    let hi = boxes.iter().map(|b| b.1).max().unwrap_or(0).max(QUANT_BOX) + 2;

    GenCase {
        space,
        vars,
        symbols,
        body_a,
        body_b,
        range: (lo, hi),
    }
}

struct BodyGen<'a> {
    rng: &'a mut Rng,
    qcount: usize,
}

impl BodyGen<'_> {
    /// A random affine expression over `scope ∪ symbols`. When `must`
    /// is `Some(v)`, the coefficient of `v` is forced nonzero (used to
    /// guarantee quantified variables actually occur in their body).
    fn affine(&mut self, scope: &[VarId], symbols: &[VarId], must: Option<VarId>) -> Affine {
        let mut terms: Vec<(VarId, i64)> = Vec::new();
        for &v in scope {
            let c = if Some(v) == must {
                let c = self.rng.range(1, 3);
                if self.rng.chance(1, 2) {
                    -c
                } else {
                    c
                }
            } else if self.rng.chance(1, 2) {
                0
            } else {
                self.rng.range(-3, 3)
            };
            if c != 0 {
                terms.push((v, c));
            }
        }
        for &s in symbols {
            if self.rng.chance(3, 10) {
                let c = self.rng.range(-1, 1);
                if c != 0 {
                    terms.push((s, c));
                }
            }
        }
        if terms.is_empty() && !scope.is_empty() {
            let v = scope[self.rng.below(scope.len() as u64) as usize];
            terms.push((v, self.rng.range(1, 3)));
        }
        Affine::from_terms(&terms, self.rng.range(-8, 8))
    }

    fn atom(&mut self, scope: &[VarId], symbols: &[VarId], must: Option<VarId>) -> Formula {
        let e = self.affine(scope, symbols, must);
        match self.rng.below(10) {
            0..=5 => Formula::ge(e),
            6 => Formula::eq0(e),
            _ => Formula::stride(self.rng.range(2, 4), e),
        }
    }

    fn node(
        &mut self,
        space: &mut Space,
        scope: &mut Vec<VarId>,
        symbols: &[VarId],
        depth: usize,
    ) -> Formula {
        if depth == 0 {
            return self.atom(scope, symbols, None);
        }
        match self.rng.below(100) {
            0..=39 => self.atom(scope, symbols, None),
            40..=59 => {
                let k = 2 + self.rng.below(2) as usize;
                Formula::and(
                    (0..k)
                        .map(|_| self.node(space, scope, symbols, depth - 1))
                        .collect(),
                )
            }
            60..=74 => {
                let k = 2 + self.rng.below(2) as usize;
                Formula::or(
                    (0..k)
                        .map(|_| self.node(space, scope, symbols, depth - 1))
                        .collect(),
                )
            }
            75..=84 => Formula::not(self.node(space, scope, symbols, depth - 1)),
            85..=92 => self.quantifier(space, scope, symbols, depth, true),
            _ => self.quantifier(space, scope, symbols, depth, false),
        }
    }

    fn quantifier(
        &mut self,
        space: &mut Space,
        scope: &mut Vec<VarId>,
        symbols: &[VarId],
        depth: usize,
        existential: bool,
    ) -> Formula {
        let q = space.var(&format!("q{}", self.qcount));
        self.qcount += 1;
        let qbox = Formula::between(Affine::constant(-QUANT_BOX), q, Affine::constant(QUANT_BOX));
        scope.push(q);
        let link = self.atom(scope, symbols, Some(q));
        let inner = self.node(space, scope, symbols, depth - 1);
        scope.pop();
        if existential {
            // ∃q: qbox ∧ link ∧ inner — witnesses live inside the box.
            Formula::exists(vec![q], Formula::and(vec![qbox, link, inner]))
        } else {
            // ∀q: qbox → (link ∨ inner) — only boxed q matter.
            Formula::forall(vec![q], Formula::or(vec![Formula::not(qbox), link, inner]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(&mut Rng::new(5).fork(3), &cfg);
        let b = generate(&mut Rng::new(5).fork(3), &cfg);
        assert_eq!(a.describe(), b.describe());
        let c = generate(&mut Rng::new(5).fork(4), &cfg);
        assert_ne!(a.describe(), c.describe());
    }

    #[test]
    fn cases_are_boxed_and_ranged() {
        let cfg = GenConfig::default();
        for i in 0..50 {
            let case = generate(&mut Rng::new(11).fork(i), &cfg);
            assert!(!case.vars.is_empty());
            assert!(case.range.0 <= -QUANT_BOX && case.range.1 >= QUANT_BOX);
            // Free variables of the union are exactly vars ∪ symbols
            // (quantified q's are bound, box covers all counted vars).
            let free = case.union().free_vars();
            for v in free {
                assert!(
                    case.vars.contains(&v) || case.symbols.contains(&v),
                    "unexpected free var {} in case {i}",
                    case.space.name(v)
                );
            }
        }
    }
}
