//! Deterministic random source for the generator.
//!
//! SplitMix64 — the same tiny generator the vendored proptest stub
//! uses, but owned here so the fuzz harness is reproducible from a
//! single `u64` seed independently of any test-framework seeding
//! policy. Case `i` of a run always draws from `Rng::new(seed).fork(i)`,
//! so any failing case can be re-generated in isolation.

/// A seedable SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: mix(seed ^ GOLDEN),
        }
    }

    /// An independent substream identified by `stream` (used to give
    /// every generated case its own deterministic stream).
    pub fn fork(&self, stream: u64) -> Rng {
        Rng::new(self.state ^ mix(stream.wrapping_mul(GOLDEN) ^ 0x5851_f42d_4c95_7f2d))
    }

    /// A stream seeded by a name (FNV-1a folded into the seed) — used
    /// by corpus replay to derive per-case budgets from the file stem.
    pub fn from_name(name: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng::new(h)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// A draw uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation scale.
        self.next_u64() % n
    }

    /// A draw uniform in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_fork_independent() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);

        let mut f0 = Rng::new(7).fork(0);
        let mut f1 = Rng::new(7).fork(1);
        assert_ne!(f0.next_u64(), f1.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..1000 {
            let v = r.range(-5, 7);
            assert!((-5..=7).contains(&v));
            assert!(r.below(3) < 3);
        }
    }
}
