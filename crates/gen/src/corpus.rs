//! The persistent seed corpus: `tests/corpus/*.pres` files that replay
//! past failures (and representative regressions) deterministically.
//!
//! A `.pres` file is the formula's printed form — the same syntax
//! `presburger_omega::parse_formula` accepts — plus `#`-comment headers
//! naming the counted variables, the symbols, and the brute-force
//! range:
//!
//! ```text
//! # presburger-gen corpus case
//! # vars: i j
//! # symbols: n
//! # range: -10 12
//! (-4 <= i && i <= 6) && (i - 2j - n >= 0)
//! ```
//!
//! Replay parses the formula into a fresh [`Space`] (vars and symbols
//! pre-interned in header order) and runs the full four-family harness
//! on it via [`CorpusCase::to_case`]. Quantified variables in a corpus
//! formula must be bounded inside their quantifier within the header
//! range, or the brute-force oracle is not exact (see
//! [`crate::oracle`]).

use crate::grammar::GenCase;
use presburger_omega::{parse_formula, Space};
use std::path::{Path, PathBuf};

/// One parsed corpus entry (still textual; see [`CorpusCase::to_case`]).
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// File stem, for reporting.
    pub name: String,
    /// Counted variable names, in order.
    pub vars: Vec<String>,
    /// Symbol names, in order.
    pub symbols: Vec<String>,
    /// Inclusive brute-force range.
    pub range: (i64, i64),
    /// The formula text.
    pub text: String,
}

impl CorpusCase {
    /// Parses the `.pres` format.
    pub fn parse(name: &str, contents: &str) -> Result<CorpusCase, String> {
        let mut vars = Vec::new();
        let mut symbols = Vec::new();
        let mut range = None;
        let mut body = Vec::new();
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(v) = rest.strip_prefix("vars:") {
                    vars = v.split_whitespace().map(String::from).collect();
                } else if let Some(s) = rest.strip_prefix("symbols:") {
                    symbols = s.split_whitespace().map(String::from).collect();
                } else if let Some(r) = rest.strip_prefix("range:") {
                    let parts: Vec<i64> = r
                        .split_whitespace()
                        .map(|t| {
                            t.parse::<i64>()
                                .map_err(|e| format!("{name}: bad range: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                    if parts.len() != 2 || parts[0] > parts[1] {
                        return Err(format!("{name}: range needs two ordered integers"));
                    }
                    range = Some((parts[0], parts[1]));
                }
                continue;
            }
            body.push(line.to_string());
        }
        if vars.is_empty() {
            return Err(format!("{name}: missing `# vars:` header"));
        }
        if body.is_empty() {
            return Err(format!("{name}: no formula text"));
        }
        Ok(CorpusCase {
            name: name.to_string(),
            vars,
            symbols,
            range: range.ok_or_else(|| format!("{name}: missing `# range:` header"))?,
            text: body.join(" "),
        })
    }

    /// Renders back to the `.pres` format.
    pub fn render(&self) -> String {
        format!(
            "# presburger-gen corpus case\n# vars: {}\n# symbols: {}\n# range: {} {}\n{}\n",
            self.vars.join(" "),
            self.symbols.join(" "),
            self.range.0,
            self.range.1,
            self.text
        )
    }

    /// Instantiates a [`GenCase`] (with `A = B =` the parsed formula,
    /// so the harness's inclusion–exclusion law degenerates to the
    /// still-useful `|A∪A| = 2|A| − |A∩A|`).
    pub fn to_case(&self) -> Result<GenCase, String> {
        let mut space = Space::new();
        let vars = self.vars.iter().map(|n| space.var(n)).collect::<Vec<_>>();
        let symbols = self
            .symbols
            .iter()
            .map(|n| space.symbol(n))
            .collect::<Vec<_>>();
        let f = parse_formula(&self.text, &mut space)
            .map_err(|e| format!("{}: parse error: {e}", self.name))?;
        Ok(GenCase {
            space,
            vars,
            symbols,
            body_a: f.clone(),
            body_b: f,
            range: self.range,
        })
    }

    /// Snapshots a (typically shrunk) case into corpus form.
    pub fn from_case(name: &str, case: &GenCase) -> CorpusCase {
        CorpusCase {
            name: name.to_string(),
            vars: case
                .vars
                .iter()
                .map(|v| case.space.name(*v).to_string())
                .collect(),
            symbols: case
                .symbols
                .iter()
                .map(|v| case.space.name(*v).to_string())
                .collect(),
            range: case.range,
            text: case.union().to_string(&case.space),
        }
    }
}

/// Loads every `*.pres` file in `dir`, sorted by file name so replay
/// order (and therefore output) is deterministic.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|r| r.ok().map(|d| d.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "pres"))
        .collect();
    entries.sort();
    entries
        .iter()
        .map(|p| {
            let stem = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("corpus")
                .to_string();
            let contents =
                std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
            CorpusCase::parse(&stem, &contents)
        })
        .collect()
}

/// Writes `case` to `dir/<name>.pres` (creating `dir` if needed).
pub fn save(dir: &Path, case: &CorpusCase) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.pres", case.name));
    std::fs::write(&path, case.render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate, GenConfig};
    use crate::rng::Rng;
    use presburger_arith::Int;

    #[test]
    fn parse_render_roundtrip() {
        let text = "# presburger-gen corpus case\n# vars: x y\n# symbols: n\n# range: -9 9\n\
                    ((-4 <= x && x <= 6) && (x - 2y - n >= 0))\n";
        let c = CorpusCase::parse("demo", text).unwrap();
        assert_eq!(c.vars, vec!["x", "y"]);
        assert_eq!(c.symbols, vec!["n"]);
        assert_eq!(c.range, (-9, 9));
        let again = CorpusCase::parse("demo", &c.render()).unwrap();
        assert_eq!(again.text, c.text);
        let case = c.to_case().unwrap();
        assert_eq!(case.vars.len(), 2);
        assert_eq!(case.symbols.len(), 1);
    }

    /// Generated cases survive a print → corpus → parse round trip with
    /// the brute-force count intact (the format really is replayable).
    #[test]
    fn generated_case_roundtrips_through_corpus_format() {
        let cfg = GenConfig::default();
        for i in 0..10 {
            let case = generate(&mut Rng::new(21).fork(i), &cfg);
            let snap = CorpusCase::from_case("rt", &case);
            let back = CorpusCase::parse("rt", &snap.render())
                .and_then(|c| c.to_case())
                .unwrap_or_else(|e| panic!("case {i}: {e}\n{}", case.describe()));
            let sym = |_: presburger_omega::VarId| Int::zero();
            if !case.symbols.is_empty() {
                continue; // zero-filled symbols are fine but keep it simple
            }
            let before =
                crate::oracle::brute_force(&case.union(), &case.vars, case.brute_range(), &sym);
            let after =
                crate::oracle::brute_force(&back.union(), &back.vars, back.brute_range(), &sym);
            assert_eq!(
                before,
                after,
                "case {i} changed meaning:\n{}",
                case.describe()
            );
        }
    }
}
