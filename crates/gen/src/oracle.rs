//! The shared brute-force oracle — ground truth for every differential
//! test in the repository.
//!
//! Unlike `presburger_counting::enumerate` (which serves the library's
//! own quantifier-free needs), this oracle evaluates the *full* input
//! language: quantifiers are decided by enumerating the bound variables
//! over the same inclusive range as the counted variables. That is
//! exact whenever quantified variables are bounded inside their
//! quantifier within the range — which the generator guarantees (see
//! [`crate::grammar`]) and corpus files must respect.
//!
//! The three formerly ad-hoc enumeration loops in
//! `tests/engine_vs_bruteforce.rs`, `crates/omega/tests/differential.rs`
//! and `crates/counting/tests/differential.rs` all route through here.

use presburger_arith::{Int, Rat};
use presburger_omega::{Conjunct, Formula, VarId};
use presburger_polyq::QPoly;
use std::collections::BTreeMap;
use std::ops::RangeInclusive;

/// Evaluates `f` (quantifiers allowed) at the point given by `assign`,
/// enumerating quantified variables over `qrange`.
pub fn eval_formula(
    f: &Formula,
    assign: &dyn Fn(VarId) -> Int,
    qrange: &RangeInclusive<i64>,
) -> bool {
    let mut env = BTreeMap::new();
    eval_env(f, &mut env, assign, qrange)
}

fn eval_env(
    f: &Formula,
    env: &mut BTreeMap<VarId, Int>,
    outer: &dyn Fn(VarId) -> Int,
    qrange: &RangeInclusive<i64>,
) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(c) => c.eval(&|v| env.get(&v).cloned().unwrap_or_else(|| outer(v))),
        Formula::And(fs) => fs.iter().all(|g| eval_env(g, env, outer, qrange)),
        Formula::Or(fs) => fs.iter().any(|g| eval_env(g, env, outer, qrange)),
        Formula::Not(g) => !eval_env(g, env, outer, qrange),
        Formula::Exists(vs, body) => quant(vs, body, env, outer, qrange, true),
        Formula::Forall(vs, body) => !quant(vs, body, env, outer, qrange, false),
    }
}

/// With `want = true`: is there an assignment of `vs` over `qrange`
/// satisfying `body`? With `want = false`: one falsifying it?
fn quant(
    vs: &[VarId],
    body: &Formula,
    env: &mut BTreeMap<VarId, Int>,
    outer: &dyn Fn(VarId) -> Int,
    qrange: &RangeInclusive<i64>,
    want: bool,
) -> bool {
    let Some((&v, rest)) = vs.split_first() else {
        return eval_env(body, env, outer, qrange) == want;
    };
    for val in qrange.clone() {
        let old = env.insert(v, Int::from(val));
        let hit = quant(rest, body, env, outer, qrange, want);
        match old {
            Some(o) => {
                env.insert(v, o);
            }
            None => {
                env.remove(&v);
            }
        }
        if hit {
            return true;
        }
    }
    false
}

/// Counts assignments of `vars` within `range` (each variable
/// independently) satisfying `f`, with remaining free variables fixed
/// by `sym`. Quantified subformulas are enumerated over the same
/// `range`.
pub fn brute_force(
    f: &Formula,
    vars: &[VarId],
    range: RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
) -> u64 {
    let mut count = 0u64;
    visit_points(f, vars, &range, sym, &mut |_| count += 1);
    count
}

/// Sums `poly` over the satisfying assignments of `vars` in `range`.
pub fn brute_sum(
    f: &Formula,
    vars: &[VarId],
    range: RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
    poly: &QPoly,
) -> Rat {
    let mut acc = Rat::zero();
    visit_points(f, vars, &range, sym, &mut |assign| {
        acc += &poly.eval(assign)
    });
    acc
}

/// Callback invoked with the full assignment of each satisfying point.
type OnSat<'a> = dyn FnMut(&dyn Fn(VarId) -> Int) + 'a;

fn visit_points(
    f: &Formula,
    vars: &[VarId],
    range: &RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
    on_sat: &mut OnSat,
) {
    let mut point = vec![0i64; vars.len()];
    rec_points(f, vars, range, sym, &mut point, 0, on_sat);
}

#[allow(clippy::too_many_arguments)]
fn rec_points(
    f: &Formula,
    vars: &[VarId],
    range: &RangeInclusive<i64>,
    sym: &dyn Fn(VarId) -> Int,
    point: &mut Vec<i64>,
    depth: usize,
    on_sat: &mut OnSat,
) {
    if depth == vars.len() {
        let assign = |v: VarId| {
            vars.iter()
                .position(|x| *x == v)
                .map(|i| Int::from(point[i]))
                .unwrap_or_else(|| sym(v))
        };
        if eval_formula(f, &assign, range) {
            on_sat(&assign);
        }
        return;
    }
    for v in range.clone() {
        point[depth] = v;
        rec_points(f, vars, range, sym, point, depth + 1, on_sat);
    }
}

/// Whether the conjunct is satisfied at a concrete point (wildcards are
/// treated as ordinary variables — `assign` must cover them).
pub fn conjunct_sat(c: &Conjunct, assign: &dyn Fn(VarId) -> Int) -> bool {
    c.eqs().iter().all(|e| e.eval(assign).is_zero())
        && c.geqs().iter().all(|e| !e.eval(assign).is_negative())
        && c.strides().iter().all(|(m, e)| m.divides(&e.eval(assign)))
}

/// Whether some assignment of `vars` over `range` satisfies the
/// conjunct, with the remaining variables fixed by `outer`.
pub fn conjunct_feasible(
    c: &Conjunct,
    vars: &[VarId],
    range: RangeInclusive<i64>,
    outer: &dyn Fn(VarId) -> Int,
) -> bool {
    fn rec(
        c: &Conjunct,
        vars: &[VarId],
        range: &RangeInclusive<i64>,
        outer: &dyn Fn(VarId) -> Int,
        vals: &mut Vec<i64>,
    ) -> bool {
        if vals.len() == vars.len() {
            let assign = |v: VarId| -> Int {
                vars.iter()
                    .position(|x| *x == v)
                    .map(|i| Int::from(vals[i]))
                    .unwrap_or_else(|| outer(v))
            };
            return conjunct_sat(c, &assign);
        }
        range.clone().any(|v| {
            vals.push(v);
            let hit = rec(c, vars, range, outer, vals);
            vals.pop();
            hit
        })
    }
    rec(c, vars, &range, outer, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::{Affine, Space};

    #[test]
    fn matches_quantifier_free_enumerator() {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.symbol("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(0), x, Affine::var(n)),
            Formula::stride(2, Affine::var(x)),
        ]);
        for nv in -2i64..=8 {
            let ours = brute_force(&f, &[x], -5..=10, &|_| Int::from(nv));
            let theirs = presburger_counting::enumerate::count_formula(&f, &[x], -5..=10, &|_| {
                Int::from(nv)
            });
            assert_eq!(ours, theirs, "n={nv}");
        }
    }

    #[test]
    fn decides_quantifiers() {
        let mut s = Space::new();
        let x = s.var("x");
        let t = s.var("t");
        // ∃t: 0 ≤ t ≤ 3 ∧ x = 2t  — even x in [0, 6]
        let f = Formula::exists(
            vec![t],
            Formula::and(vec![
                Formula::between(Affine::constant(0), t, Affine::constant(3)),
                Formula::eq(Affine::var(x), Affine::term(t, 2)),
            ]),
        );
        let c = brute_force(&f, &[x], -8..=8, &|_| Int::zero());
        assert_eq!(c, 4); // 0, 2, 4, 6

        // ∀t: (0 ≤ t ≤ 2) → x + t ≥ 0  ⇔  x ≥ 0
        let g = Formula::forall(
            vec![t],
            Formula::implies(
                Formula::between(Affine::constant(0), t, Affine::constant(2)),
                Formula::ge(Affine::var(x) + Affine::var(t)),
            ),
        );
        let c = brute_force(&g, &[x], -4..=4, &|_| Int::zero());
        assert_eq!(c, 5); // 0..=4
    }

    #[test]
    fn conjunct_helpers() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let mut c = Conjunct::new();
        c.add_geq(Affine::from_terms(&[(x, 1)], 3)); // x ≥ -3
        c.add_geq(Affine::from_terms(&[(x, -1)], 3)); // x ≤ 3
        c.add_eq(Affine::from_terms(&[(x, 1), (y, -2)], 0)); // x = 2y
        c.add_stride(Int::from(2), Affine::var(x));
        assert!(conjunct_sat(&c, &|v| if v == x {
            Int::from(2)
        } else {
            Int::from(1)
        }));
        assert!(!conjunct_sat(&c, &|v| if v == x {
            Int::from(3)
        } else {
            Int::from(1)
        }));
        assert!(conjunct_feasible(&c, &[x, y], -5..=5, &|_| Int::zero()));
        let mut unsat = c.clone();
        unsat.add_geq(Affine::from_terms(&[(x, 1)], -10)); // x ≥ 10
        assert!(!conjunct_feasible(&unsat, &[x, y], -5..=5, &|_| Int::zero()));
    }
}
