//! Deterministic request-stream generation for `presburger-serve`.
//!
//! The serving layer's stress harness (`serve_stress`) needs floods of
//! protocol requests that are (a) valid, (b) diverse — mixing trivial
//! and splinter-heavy formulas, counts and sums, governed and
//! ungoverned — and (c) **reproducible**: the same seed must yield the
//! same byte-exact request lines so response transcripts can be
//! compared across runs and worker counts.
//!
//! A request line follows the grammar served by
//! `presburger_serve::protocol` (see DESIGN.md §11):
//!
//! ```text
//! count <id> [key=value]* {vars : formula}
//! sum   <id> [key=value]* <poly> {vars : formula}
//! ```
//!
//! Only *deterministic* budget overrides are ever generated
//! (`max_splinters=`, `max_depth=`, …) — never `deadline_ms=`, whose
//! outcome depends on wall-clock time and would break byte-identical
//! replay.

use crate::grammar::{generate, GenCase, GenConfig};
use crate::rng::Rng;

/// One generated request: the wire line plus the id it carries.
#[derive(Clone, Debug)]
pub struct GenRequest {
    /// The request id embedded in the line.
    pub id: String,
    /// The full request line (no trailing newline).
    pub line: String,
}

/// Renders a `count` request line for `case` under `id` with no
/// budget overrides.
pub fn count_request(id: &str, case: &GenCase) -> String {
    format!(
        "count {id} {{{} : {}}}",
        var_list(case),
        case.union().to_string(&case.space)
    )
}

fn var_list(case: &GenCase) -> String {
    case.vars
        .iter()
        .map(|v| case.space.name(*v).to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Generates `n` deterministic request lines from `seed`. Request `i`
/// draws from `Rng::new(seed).fork(i)`, so any single request can be
/// re-generated in isolation; identical `(seed, n, cfg)` yield
/// byte-identical lines.
pub fn request_lines(seed: u64, n: usize, cfg: &GenConfig) -> Vec<GenRequest> {
    let base = Rng::new(seed);
    (0..n as u64)
        .map(|i| {
            let mut rng = base.fork(i);
            let case = generate(&mut rng, cfg);
            let id = format!("r{i}");
            let mut opts = String::new();
            // Deterministic budget overrides on a minority of requests:
            // exercise the degradation ladder without breaking replay.
            if rng.chance(1, 4) {
                let menu: [(&str, &[u64]); 4] = [
                    ("max_splinters", &[0, 1, 2, 8]),
                    ("max_dnf_clauses", &[1, 2, 8, 64]),
                    ("max_depth", &[1, 2, 4, 8]),
                    ("max_pieces", &[1, 4, 16, 64]),
                ];
                let (key, values) = menu[rng.below(menu.len() as u64) as usize];
                let value = values[rng.below(values.len() as u64) as usize];
                opts = format!("{key}={value} ");
            }
            let vars = var_list(&case);
            let formula = case.union().to_string(&case.space);
            let line = if rng.chance(1, 5) && !case.vars.is_empty() {
                // a summation request: a small affine polynomial over
                // the counted variables
                let poly = case
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(k, v)| format!("{}{}", k + 1, case.space.name(*v)))
                    .collect::<Vec<_>>()
                    .join(" + ");
                format!("sum {id} {opts}{poly} {{{vars} : {formula}}}")
            } else {
                format!("count {id} {opts}{{{vars} : {formula}}}")
            };
            GenRequest { id, line }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let cfg = GenConfig::default();
        let a = request_lines(7, 25, &cfg);
        let b = request_lines(7, 25, &cfg);
        assert_eq!(a.len(), 25);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
        }
        let c = request_lines(8, 25, &cfg);
        assert!(a.iter().zip(&c).any(|(x, y)| x.line != y.line));
    }

    #[test]
    fn lines_are_single_line_and_braced() {
        for r in request_lines(3, 40, &GenConfig::default()) {
            assert!(!r.line.contains('\n'));
            assert!(r.line.contains('{') && r.line.ends_with('}'), "{}", r.line);
            assert!(
                r.line.starts_with("count ") || r.line.starts_with("sum "),
                "{}",
                r.line
            );
            assert!(r.line.contains(&r.id));
            assert!(
                !r.line.contains("deadline_ms="),
                "replay-unsafe: {}",
                r.line
            );
        }
    }
}
