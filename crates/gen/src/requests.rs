//! Deterministic request-stream generation for `presburger-serve`.
//!
//! The serving layer's stress harness (`serve_stress`) needs floods of
//! protocol requests that are (a) valid, (b) diverse — mixing trivial
//! and splinter-heavy formulas, counts and sums, governed and
//! ungoverned — and (c) **reproducible**: the same seed must yield the
//! same byte-exact request lines so response transcripts can be
//! compared across runs and worker counts.
//!
//! A request line follows the grammar served by
//! `presburger_serve::protocol` (see DESIGN.md §11):
//!
//! ```text
//! count <id> [key=value]* {vars : formula}
//! sum   <id> [key=value]* <poly> {vars : formula}
//! ```
//!
//! Only *deterministic* budget overrides are ever generated
//! (`max_splinters=`, `max_depth=`, …) — never `deadline_ms=`, whose
//! outcome depends on wall-clock time and would break byte-identical
//! replay.

use crate::grammar::{generate, GenCase, GenConfig};
use crate::rng::Rng;

/// One generated request: the wire line plus the id it carries.
#[derive(Clone, Debug)]
pub struct GenRequest {
    /// The request id embedded in the line.
    pub id: String,
    /// The full request line (no trailing newline).
    pub line: String,
}

/// Renders a `count` request line for `case` under `id` with no
/// budget overrides.
pub fn count_request(id: &str, case: &GenCase) -> String {
    format!(
        "count {id} {{{} : {}}}",
        var_list(case),
        case.union().to_string(&case.space)
    )
}

fn var_list(case: &GenCase) -> String {
    case.vars
        .iter()
        .map(|v| case.space.name(*v).to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Admission-option mix for [`admission_request_lines`]: how often
/// generated requests carry explicit `prio=` / `client=` options
/// (DESIGN.md §16). Draws for these options happen *after* every draw
/// [`request_lines`] makes, so a stream with a mix shares its formulas,
/// budgets and verbs with the plain stream of the same seed — only the
/// admission options differ.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionMix {
    /// One in this many requests carries an explicit `prio=` (drawn
    /// uniformly over `interactive`/`batch`/`background`); the rest
    /// ride the default lane. At least 1 (= every request).
    pub prio_one_in: u64,
    /// One in this many requests carries an explicit `client=`; the
    /// rest fall back to the connection-scoped identity. At least 1.
    pub client_one_in: u64,
    /// Distinct client identities (`c0`…`c{clients-1}`) to draw from.
    pub clients: u64,
}

impl Default for AdmissionMix {
    fn default() -> AdmissionMix {
        AdmissionMix {
            prio_one_in: 2,
            client_one_in: 2,
            clients: 4,
        }
    }
}

/// Generates `n` deterministic request lines from `seed`. Request `i`
/// draws from `Rng::new(seed).fork(i)`, so any single request can be
/// re-generated in isolation; identical `(seed, n, cfg)` yield
/// byte-identical lines.
pub fn request_lines(seed: u64, n: usize, cfg: &GenConfig) -> Vec<GenRequest> {
    request_stream(seed, n, cfg, None)
}

/// [`request_lines`] plus deterministic `prio=` / `client=` admission
/// options per `mix`. Same seed ⇒ same underlying requests as the
/// plain stream; the admission draws ride after them.
pub fn admission_request_lines(
    seed: u64,
    n: usize,
    cfg: &GenConfig,
    mix: &AdmissionMix,
) -> Vec<GenRequest> {
    request_stream(seed, n, cfg, Some(mix))
}

fn request_stream(
    seed: u64,
    n: usize,
    cfg: &GenConfig,
    mix: Option<&AdmissionMix>,
) -> Vec<GenRequest> {
    let base = Rng::new(seed);
    (0..n as u64)
        .map(|i| {
            let mut rng = base.fork(i);
            let case = generate(&mut rng, cfg);
            let id = format!("r{i}");
            let mut opts = String::new();
            // Deterministic budget overrides on a minority of requests:
            // exercise the degradation ladder without breaking replay.
            if rng.chance(1, 4) {
                let menu: [(&str, &[u64]); 4] = [
                    ("max_splinters", &[0, 1, 2, 8]),
                    ("max_dnf_clauses", &[1, 2, 8, 64]),
                    ("max_depth", &[1, 2, 4, 8]),
                    ("max_pieces", &[1, 4, 16, 64]),
                ];
                let (key, values) = menu[rng.below(menu.len() as u64) as usize];
                let value = values[rng.below(values.len() as u64) as usize];
                opts = format!("{key}={value} ");
            }
            let vars = var_list(&case);
            let formula = case.union().to_string(&case.space);
            let is_sum = rng.chance(1, 5) && !case.vars.is_empty();
            // Admission options draw strictly after everything above,
            // so enabling a mix never perturbs the base stream.
            if let Some(mix) = mix {
                if rng.chance(1, mix.prio_one_in.max(1)) {
                    const LANES: [&str; 3] = ["interactive", "batch", "background"];
                    opts.push_str(&format!(
                        "prio={} ",
                        LANES[rng.below(LANES.len() as u64) as usize]
                    ));
                }
                if rng.chance(1, mix.client_one_in.max(1)) {
                    opts.push_str(&format!("client=c{} ", rng.below(mix.clients.max(1))));
                }
            }
            let line = if is_sum {
                // a summation request: a small affine polynomial over
                // the counted variables
                let poly = case
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(k, v)| format!("{}{}", k + 1, case.space.name(*v)))
                    .collect::<Vec<_>>()
                    .join(" + ");
                format!("sum {id} {opts}{poly} {{{vars} : {formula}}}")
            } else {
                format!("count {id} {opts}{{{vars} : {formula}}}")
            };
            GenRequest { id, line }
        })
        .collect()
}

/// Partitions the deterministic request stream of
/// [`request_lines`]`(seed, n, cfg)` into consecutive batches of
/// `1..=max_batch` requests, with batch sizes drawn from a dedicated
/// fork of the same seed (fork index `n`, past every per-request fork).
/// Identical `(seed, n, cfg, max_batch)` yield identical groupings, so
/// the binary protocol's batch frames replay byte-exactly; flattening
/// the batches reproduces `request_lines` exactly.
pub fn batched_request_lines(
    seed: u64,
    n: usize,
    cfg: &GenConfig,
    max_batch: usize,
) -> Vec<Vec<GenRequest>> {
    let requests = request_lines(seed, n, cfg);
    let max_batch = max_batch.max(1) as u64;
    let mut rng = Rng::new(seed).fork(n as u64);
    let mut batches = Vec::new();
    let mut rest = requests.as_slice();
    while !rest.is_empty() {
        let take = (1 + rng.below(max_batch)) as usize;
        let take = take.min(rest.len());
        batches.push(rest[..take].to_vec());
        rest = &rest[take..];
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let cfg = GenConfig::default();
        let a = request_lines(7, 25, &cfg);
        let b = request_lines(7, 25, &cfg);
        assert_eq!(a.len(), 25);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
        }
        let c = request_lines(8, 25, &cfg);
        assert!(a.iter().zip(&c).any(|(x, y)| x.line != y.line));
    }

    #[test]
    fn batches_partition_the_flat_stream() {
        let cfg = GenConfig::default();
        let flat = request_lines(11, 30, &cfg);
        let batched = batched_request_lines(11, 30, &cfg, 8);
        let rejoined: Vec<&GenRequest> = batched.iter().flatten().collect();
        assert_eq!(rejoined.len(), flat.len());
        for (a, b) in rejoined.iter().zip(&flat) {
            assert_eq!(a.line, b.line);
        }
        for batch in &batched {
            assert!(!batch.is_empty() && batch.len() <= 8);
        }
        // Deterministic grouping.
        let again = batched_request_lines(11, 30, &cfg, 8);
        assert_eq!(
            batched.iter().map(Vec::len).collect::<Vec<_>>(),
            again.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn admission_mix_rides_on_the_plain_stream() {
        let cfg = GenConfig::default();
        let plain = request_lines(13, 40, &cfg);
        let mixed = admission_request_lines(13, 40, &cfg, &AdmissionMix::default());
        // Deterministic.
        let again = admission_request_lines(13, 40, &cfg, &AdmissionMix::default());
        assert_eq!(
            mixed.iter().map(|r| &r.line).collect::<Vec<_>>(),
            again.iter().map(|r| &r.line).collect::<Vec<_>>()
        );
        let mut saw_prio = false;
        let mut saw_client = false;
        for (p, m) in plain.iter().zip(&mixed) {
            // Stripping the admission options recovers the plain line:
            // the admission draws never perturb the base stream.
            let stripped: String = m
                .line
                .split(' ')
                .filter(|tok| !tok.starts_with("prio=") && !tok.starts_with("client="))
                .collect::<Vec<_>>()
                .join(" ");
            assert_eq!(stripped, p.line);
            saw_prio |= m.line.contains("prio=");
            saw_client |= m.line.contains("client=");
        }
        assert!(saw_prio && saw_client, "mix must actually fire");
        // Every mixed line still parses under the serve grammar? That
        // is asserted end-to-end by serve_stress phase 8; here we keep
        // the crate dependency-free and check shape only.
        for m in &mixed {
            assert!(
                !m.line.contains("deadline_ms="),
                "replay-unsafe: {}",
                m.line
            );
        }
    }

    #[test]
    fn lines_are_single_line_and_braced() {
        for r in request_lines(3, 40, &GenConfig::default()) {
            assert!(!r.line.contains('\n'));
            assert!(r.line.contains('{') && r.line.ends_with('}'), "{}", r.line);
            assert!(
                r.line.starts_with("count ") || r.line.starts_with("sum "),
                "{}",
                r.line
            );
            assert!(r.line.contains(&r.id));
            assert!(
                !r.line.contains("deadline_ms="),
                "replay-unsafe: {}",
                r.line
            );
        }
    }
}
