//! Deterministic request-stream generation for `presburger-serve`.
//!
//! The serving layer's stress harness (`serve_stress`) needs floods of
//! protocol requests that are (a) valid, (b) diverse — mixing trivial
//! and splinter-heavy formulas, counts and sums, governed and
//! ungoverned — and (c) **reproducible**: the same seed must yield the
//! same byte-exact request lines so response transcripts can be
//! compared across runs and worker counts.
//!
//! A request line follows the grammar served by
//! `presburger_serve::protocol` (see DESIGN.md §11):
//!
//! ```text
//! count <id> [key=value]* {vars : formula}
//! sum   <id> [key=value]* <poly> {vars : formula}
//! ```
//!
//! Only *deterministic* budget overrides are ever generated
//! (`max_splinters=`, `max_depth=`, …) — never `deadline_ms=`, whose
//! outcome depends on wall-clock time and would break byte-identical
//! replay.

use crate::grammar::{generate, GenCase, GenConfig};
use crate::rng::Rng;

/// One generated request: the wire line plus the id it carries.
#[derive(Clone, Debug)]
pub struct GenRequest {
    /// The request id embedded in the line.
    pub id: String,
    /// The full request line (no trailing newline).
    pub line: String,
}

/// Renders a `count` request line for `case` under `id` with no
/// budget overrides.
pub fn count_request(id: &str, case: &GenCase) -> String {
    format!(
        "count {id} {{{} : {}}}",
        var_list(case),
        case.union().to_string(&case.space)
    )
}

fn var_list(case: &GenCase) -> String {
    case.vars
        .iter()
        .map(|v| case.space.name(*v).to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Generates `n` deterministic request lines from `seed`. Request `i`
/// draws from `Rng::new(seed).fork(i)`, so any single request can be
/// re-generated in isolation; identical `(seed, n, cfg)` yield
/// byte-identical lines.
pub fn request_lines(seed: u64, n: usize, cfg: &GenConfig) -> Vec<GenRequest> {
    let base = Rng::new(seed);
    (0..n as u64)
        .map(|i| {
            let mut rng = base.fork(i);
            let case = generate(&mut rng, cfg);
            let id = format!("r{i}");
            let mut opts = String::new();
            // Deterministic budget overrides on a minority of requests:
            // exercise the degradation ladder without breaking replay.
            if rng.chance(1, 4) {
                let menu: [(&str, &[u64]); 4] = [
                    ("max_splinters", &[0, 1, 2, 8]),
                    ("max_dnf_clauses", &[1, 2, 8, 64]),
                    ("max_depth", &[1, 2, 4, 8]),
                    ("max_pieces", &[1, 4, 16, 64]),
                ];
                let (key, values) = menu[rng.below(menu.len() as u64) as usize];
                let value = values[rng.below(values.len() as u64) as usize];
                opts = format!("{key}={value} ");
            }
            let vars = var_list(&case);
            let formula = case.union().to_string(&case.space);
            let line = if rng.chance(1, 5) && !case.vars.is_empty() {
                // a summation request: a small affine polynomial over
                // the counted variables
                let poly = case
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(k, v)| format!("{}{}", k + 1, case.space.name(*v)))
                    .collect::<Vec<_>>()
                    .join(" + ");
                format!("sum {id} {opts}{poly} {{{vars} : {formula}}}")
            } else {
                format!("count {id} {opts}{{{vars} : {formula}}}")
            };
            GenRequest { id, line }
        })
        .collect()
}

/// Partitions the deterministic request stream of
/// [`request_lines`]`(seed, n, cfg)` into consecutive batches of
/// `1..=max_batch` requests, with batch sizes drawn from a dedicated
/// fork of the same seed (fork index `n`, past every per-request fork).
/// Identical `(seed, n, cfg, max_batch)` yield identical groupings, so
/// the binary protocol's batch frames replay byte-exactly; flattening
/// the batches reproduces `request_lines` exactly.
pub fn batched_request_lines(
    seed: u64,
    n: usize,
    cfg: &GenConfig,
    max_batch: usize,
) -> Vec<Vec<GenRequest>> {
    let requests = request_lines(seed, n, cfg);
    let max_batch = max_batch.max(1) as u64;
    let mut rng = Rng::new(seed).fork(n as u64);
    let mut batches = Vec::new();
    let mut rest = requests.as_slice();
    while !rest.is_empty() {
        let take = (1 + rng.below(max_batch)) as usize;
        let take = take.min(rest.len());
        batches.push(rest[..take].to_vec());
        rest = &rest[take..];
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let cfg = GenConfig::default();
        let a = request_lines(7, 25, &cfg);
        let b = request_lines(7, 25, &cfg);
        assert_eq!(a.len(), 25);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
        }
        let c = request_lines(8, 25, &cfg);
        assert!(a.iter().zip(&c).any(|(x, y)| x.line != y.line));
    }

    #[test]
    fn batches_partition_the_flat_stream() {
        let cfg = GenConfig::default();
        let flat = request_lines(11, 30, &cfg);
        let batched = batched_request_lines(11, 30, &cfg, 8);
        let rejoined: Vec<&GenRequest> = batched.iter().flatten().collect();
        assert_eq!(rejoined.len(), flat.len());
        for (a, b) in rejoined.iter().zip(&flat) {
            assert_eq!(a.line, b.line);
        }
        for batch in &batched {
            assert!(!batch.is_empty() && batch.len() <= 8);
        }
        // Deterministic grouping.
        let again = batched_request_lines(11, 30, &cfg, 8);
        assert_eq!(
            batched.iter().map(Vec::len).collect::<Vec<_>>(),
            again.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lines_are_single_line_and_braced() {
        for r in request_lines(3, 40, &GenConfig::default()) {
            assert!(!r.line.contains('\n'));
            assert!(r.line.contains('{') && r.line.ends_with('}'), "{}", r.line);
            assert!(
                r.line.starts_with("count ") || r.line.starts_with("sum "),
                "{}",
                r.line
            );
            assert!(r.line.contains(&r.id));
            assert!(
                !r.line.contains("deadline_ms="),
                "replay-unsafe: {}",
                r.line
            );
        }
    }
}
