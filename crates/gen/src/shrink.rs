//! Delta-debugging shrinker: minimizes a failing [`GenCase`] while a
//! caller-supplied predicate keeps reproducing the failure.
//!
//! The shrinker is greedy over a well-founded weight — (number of
//! variables, atom count, AST size, coefficient magnitude), compared
//! lexicographically — so it always terminates, and every accepted
//! step strictly simplifies the counterexample. Candidate moves:
//!
//! * drop a counted variable or symbol (substituting `0` for it);
//! * replace any subformula by `true` or `false`;
//! * remove a conjunct/disjunct; unwrap a negation;
//! * instantiate a quantifier at the constants `0`, `1`, `−1`;
//! * zero a coefficient, halve a constant, reduce a stride modulus.

use crate::grammar::GenCase;
use presburger_arith::Int;
use presburger_omega::{Affine, Constraint, Formula, VarId};

/// Greedily minimizes `case` while `still_fails` holds, spending at
/// most `max_checks` predicate evaluations.
pub fn shrink_case(
    case: &GenCase,
    still_fails: &mut dyn FnMut(&GenCase) -> bool,
    max_checks: usize,
) -> GenCase {
    let mut cur = case.clone();
    let mut checks = 0usize;
    'outer: loop {
        let cur_w = case_weight(&cur);
        for cand in case_candidates(&cur) {
            if checks >= max_checks {
                break 'outer;
            }
            if case_weight(&cand) >= cur_w {
                continue;
            }
            checks += 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

/// The atom count of the case's union formula — the "number of
/// constraints" a shrunk counterexample is measured by.
pub fn constraint_count(case: &GenCase) -> usize {
    case.union().count_atoms()
}

type Weight = (usize, usize, usize, u128);

fn case_weight(case: &GenCase) -> Weight {
    (
        case.vars.len() + case.symbols.len(),
        case.body_a.count_atoms() + case.body_b.count_atoms(),
        case.body_a.size() + case.body_b.size(),
        magnitude(&case.body_a) + magnitude(&case.body_b),
    )
}

fn magnitude(f: &Formula) -> u128 {
    let mut total: u128 = 0;
    f.for_each_atom(&mut |c| {
        let (e, extra) = match c {
            Constraint::Ge(e) | Constraint::Eq(e) => (e, 0u128),
            Constraint::Stride(m, e) => (e, int_mag(m)),
        };
        total = total
            .saturating_add(extra)
            .saturating_add(int_mag(e.constant_term()));
        for (_, k) in e.iter() {
            total = total.saturating_add(int_mag(k));
        }
    });
    total
}

fn int_mag(v: &Int) -> u128 {
    v.to_i64()
        .map(|x| x.unsigned_abs() as u128)
        .unwrap_or(u128::MAX / 4)
}

fn case_candidates(case: &GenCase) -> Vec<GenCase> {
    let mut out = Vec::new();
    // Drop a counted variable (keep at least one so the counting
    // problem stays a counting problem).
    if case.vars.len() > 1 {
        for i in 0..case.vars.len() {
            let v = case.vars[i];
            let zero = Affine::constant(0);
            let mut c = case.clone();
            c.vars.remove(i);
            c.body_a = c.body_a.substitute(v, &zero);
            c.body_b = c.body_b.substitute(v, &zero);
            out.push(c);
        }
    }
    // Drop a symbol.
    for i in 0..case.symbols.len() {
        let sv = case.symbols[i];
        let zero = Affine::constant(0);
        let mut c = case.clone();
        c.symbols.remove(i);
        c.body_a = c.body_a.substitute(sv, &zero);
        c.body_b = c.body_b.substitute(sv, &zero);
        out.push(c);
    }
    // Shrink either body.
    for cand in formula_candidates(&case.body_a) {
        let mut c = case.clone();
        c.body_a = cand;
        out.push(c);
    }
    for cand in formula_candidates(&case.body_b) {
        let mut c = case.clone();
        c.body_b = cand;
        out.push(c);
    }
    out
}

/// All one-step reductions of a formula.
fn formula_candidates(f: &Formula) -> Vec<Formula> {
    let mut out = Vec::new();
    if !matches!(f, Formula::True | Formula::False) {
        out.push(Formula::False);
        out.push(Formula::True);
    }
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom(c) => {
            for cand in atom_candidates(c) {
                out.push(Formula::Atom(cand));
            }
        }
        Formula::And(fs) => {
            for i in 0..fs.len() {
                let mut rest = fs.clone();
                rest.remove(i);
                out.push(Formula::and(rest));
            }
            for i in 0..fs.len() {
                for cand in formula_candidates(&fs[i]) {
                    let mut next = fs.clone();
                    next[i] = cand;
                    out.push(Formula::and(next));
                }
            }
        }
        Formula::Or(fs) => {
            for i in 0..fs.len() {
                let mut rest = fs.clone();
                rest.remove(i);
                out.push(Formula::or(rest));
            }
            for i in 0..fs.len() {
                for cand in formula_candidates(&fs[i]) {
                    let mut next = fs.clone();
                    next[i] = cand;
                    out.push(Formula::or(next));
                }
            }
        }
        Formula::Not(g) => {
            out.push((**g).clone());
            for cand in formula_candidates(g) {
                out.push(Formula::not(cand));
            }
        }
        Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
            // Instantiate the quantifier at small constants.
            for k in [0i64, 1, -1] {
                let inst = vs.iter().fold((**g).clone(), |acc, &v| {
                    acc.substitute(v, &Affine::constant(k))
                });
                out.push(inst);
            }
            let rebuild: fn(Vec<VarId>, Formula) -> Formula = match f {
                Formula::Exists(..) => Formula::exists,
                _ => Formula::forall,
            };
            for cand in formula_candidates(g) {
                out.push(rebuild(vs.clone(), cand));
            }
        }
    }
    out
}

fn atom_candidates(c: &Constraint) -> Vec<Constraint> {
    let mut out = Vec::new();
    let (e, rebuild): (&Affine, Box<dyn Fn(Affine) -> Constraint>) = match c {
        Constraint::Ge(e) => (e, Box::new(Constraint::Ge)),
        Constraint::Eq(e) => (e, Box::new(Constraint::Eq)),
        Constraint::Stride(m, e) => {
            if *m > Int::from(2) {
                out.push(Constraint::Stride(Int::from(2), e.clone()));
            }
            let m = m.clone();
            (e, Box::new(move |e| Constraint::Stride(m.clone(), e)))
        }
    };
    // Zero one coefficient at a time.
    for (v, _) in e.iter() {
        let mut e2 = e.clone();
        e2.set_coeff(v, Int::zero());
        out.push(rebuild(e2));
    }
    // Halve the constant toward zero.
    let k = e.constant_term();
    if !k.is_zero() {
        if let Some(kv) = k.to_i64() {
            let mut e2 = e.clone();
            e2.add_constant(&Int::from(kv / 2 - kv));
            out.push(rebuild(e2));
            if kv / 2 != 0 {
                let mut e3 = e.clone();
                e3.add_constant(&Int::from(-kv));
                out.push(rebuild(e3));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate, GenConfig};
    use crate::oracle;
    use crate::rng::Rng;

    /// Shrinking an artificial "stride atoms are miscounted" failure
    /// converges to a tiny counterexample that still has a stride.
    #[test]
    fn shrinks_to_a_tiny_stride_witness() {
        let cfg = GenConfig::default();
        // Find a generated case containing a stride atom.
        let mut case = None;
        for i in 0..200 {
            let c = generate(&mut Rng::new(99).fork(i), &cfg);
            if has_stride(&c.union()) {
                case = Some(c);
                break;
            }
        }
        let case = case.expect("no stride case in 200 draws");
        let mut fails = |c: &GenCase| has_stride(&c.union()) && !c.vars.is_empty();
        assert!(fails(&case));
        let min = shrink_case(&case, &mut fails, 5_000);
        assert!(fails(&min));
        assert!(
            constraint_count(&min) <= 3,
            "shrunk case still has {} constraints: {}",
            constraint_count(&min),
            min.describe()
        );
    }

    fn has_stride(f: &Formula) -> bool {
        let mut found = false;
        f.for_each_atom(&mut |c| {
            if matches!(c, Constraint::Stride(..)) {
                found = true;
            }
        });
        found
    }

    /// A count-mismatch predicate (the real harness shape): shrinking
    /// preserves the property and the result stays brute-forceable.
    #[test]
    fn shrinking_preserves_failure_predicates() {
        let cfg = GenConfig::default();
        let case = generate(&mut Rng::new(3).fork(17), &cfg);
        // Predicate: the case has at least one satisfying point.
        let mut nonempty = |c: &GenCase| {
            !c.vars.is_empty()
                && oracle::brute_force(&c.union(), &c.vars, c.brute_range(), &|_| {
                    presburger_arith::Int::zero()
                }) > 0
        };
        if !nonempty(&case) {
            return; // this seed generated an empty case; nothing to shrink
        }
        let min = shrink_case(&case, &mut nonempty, 2_000);
        assert!(nonempty(&min));
        assert!(case_weight(&min) <= case_weight(&case));
    }
}
