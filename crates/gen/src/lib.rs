//! presburger-gen: a generative differential-testing subsystem for the
//! Presburger counting pipeline.
//!
//! The paper's value proposition is *exact* symbolic counts, so the
//! reproduction lives or dies by correctness under adversarial inputs.
//! This crate provides the correctness layer:
//!
//! * [`grammar`] — a seedable, grammar-directed generator covering the
//!   full input language: affine atoms with strides, conjunction /
//!   disjunction / negation, bounded existential and universal
//!   quantifiers, and symbolic parameters ([`generate`]).
//! * [`oracle`] — the shared brute-force oracle (quantifier-aware
//!   enumeration over a bounded box) used by every differential test
//!   in the repository ([`oracle::brute_force`]).
//! * [`metamorphic`] — count-preserving rewrites (renaming,
//!   translation) for engine-vs-engine cross-checks.
//! * [`harness`] — four oracle/metamorphic families per case:
//!   brute force, inclusion–exclusion + invariances, thread-count
//!   determinism + governed bracketing, and baseline (Tawbi/HP)
//!   sanity ([`check_case`]).
//! * [`shrink`] — a delta-debugging minimizer that reduces a failing
//!   case before it is reported ([`shrink_case`]).
//! * [`corpus`] — the persistent `tests/corpus/*.pres` seed corpus
//!   replayed on every run.
//!
//! # Reproducing a failure
//!
//! The fuzz harness (`tests/fuzz_differential.rs` at the workspace
//! root) derives case `i` from `Rng::new(seed).fork(i)` and prints both
//! numbers on failure:
//!
//! ```text
//! PRESBURGER_GEN_SEED=<seed> cargo test --test fuzz_differential
//! ```
//!
//! # Environment knobs
//!
//! * `PRESBURGER_GEN_SEED` — base seed (default in the harness).
//! * `PRESBURGER_GEN_CASES` — number of generated cases per run.
//! * `PRESBURGER_GEN_FAULT` — inject a deliberate engine-side bug
//!   (`count_off_by_one` | `miscount_stride`) to prove the harness
//!   catches and shrinks real miscounts (see [`harness::Fault`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod grammar;
pub mod harness;
pub mod metamorphic;
pub mod oracle;
pub mod requests;
pub mod rng;
pub mod shrink;

pub use grammar::{generate, GenCase, GenConfig};
pub use harness::{check_case, BudgetChoice, CaseFailure, Fault, Harness};
pub use requests::{
    admission_request_lines, batched_request_lines, count_request, request_lines, AdmissionMix,
    GenRequest,
};
pub use rng::Rng;
pub use shrink::{constraint_count, shrink_case};

/// The base seed used when `PRESBURGER_GEN_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x5EED_CA5E;

/// Reads `PRESBURGER_GEN_SEED` (decimal `u64`), defaulting to
/// [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("PRESBURGER_GEN_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Reads `PRESBURGER_GEN_CASES`, defaulting to `default`.
pub fn cases_from_env(default: usize) -> usize {
    std::env::var("PRESBURGER_GEN_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}
