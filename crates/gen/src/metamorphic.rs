//! Metamorphic transformations: formula rewrites that provably preserve
//! the solution count, used as engine-vs-engine cross-checks.
//!
//! * **Renaming** — interning fresh names for every counted variable
//!   and symbol and substituting them through cannot change the count.
//! * **Translation** — substituting `v := v − t` translates the
//!   solution set by `+t`; the count at every parameter point is
//!   unchanged.
//!
//! The third law the harness checks, inclusion–exclusion
//! (`|A∪B| = |A| + |B| − |A∩B|`), needs no transformation and lives in
//! [`crate::harness`] directly.

use presburger_omega::{Affine, Formula, Space, VarId};

/// A renamed copy of a counting problem: same space extended with
/// primed variables, the formula rewritten onto them.
pub struct Renamed {
    /// Space containing both the original and the renamed variables.
    pub space: Space,
    /// The rewritten formula (mentions only renamed vars/symbols).
    pub formula: Formula,
    /// Renamed counted variables, in the original order.
    pub vars: Vec<VarId>,
    /// Renamed symbols, in the original order.
    pub symbols: Vec<VarId>,
}

/// Renames every counted variable and symbol of `f` to a fresh
/// `<name>_r` variable. Quantified variables are untouched
/// (substitution respects shadowing, and they are not free).
pub fn rename_free(space: &Space, f: &Formula, vars: &[VarId], symbols: &[VarId]) -> Renamed {
    let mut s2 = space.clone();
    let mut f2 = f.clone();
    let map = |s2: &mut Space, ids: &[VarId], symbol: bool, f2: &mut Formula| {
        ids.iter()
            .map(|&v| {
                let name = format!("{}_r", space.name(v));
                let nv = if symbol {
                    s2.symbol(&name)
                } else {
                    s2.var(&name)
                };
                *f2 = f2.substitute(v, &Affine::var(nv));
                nv
            })
            .collect::<Vec<_>>()
    };
    let vars2 = map(&mut s2, vars, false, &mut f2);
    let symbols2 = map(&mut s2, symbols, true, &mut f2);
    Renamed {
        space: s2,
        formula: f2,
        vars: vars2,
        symbols: symbols2,
    }
}

/// Substitutes `v := v − shift` for each counted variable, translating
/// the solution set by `+shift` without changing its cardinality.
pub fn translate(f: &Formula, vars: &[VarId], shifts: &[i64]) -> Formula {
    let mut out = f.clone();
    for (&v, &t) in vars.iter().zip(shifts) {
        out = out.substitute(v, &(Affine::var(v) - Affine::constant(t)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use presburger_arith::Int;

    #[test]
    fn renaming_and_translation_preserve_counts() {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.symbol("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(-2), x, Affine::constant(4)),
            Formula::between(Affine::constant(-2), y, Affine::constant(4)),
            Formula::ge(Affine::from_terms(&[(x, 1), (y, -1), (n, 1)], 0)),
            Formula::stride(2, Affine::var(x) + Affine::var(y)),
        ]);
        for nv in -2i64..=2 {
            let sym = |_: VarId| Int::from(nv);
            let base = oracle::brute_force(&f, &[x, y], -6..=8, &sym);

            let r = rename_free(&s, &f, &[x, y], &[n]);
            let renamed = oracle::brute_force(&r.formula, &r.vars, -6..=8, &sym);
            assert_eq!(base, renamed, "renaming changed the count at n={nv}");

            let g = translate(&f, &[x, y], &[3, -2]);
            let translated = oracle::brute_force(&g, &[x, y], -9..=11, &sym);
            assert_eq!(base, translated, "translation changed the count at n={nv}");
        }
    }
}
