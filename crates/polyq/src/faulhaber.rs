//! Faulhaber power-sum formulas (§4.1).
//!
//! `power_sum(p, n)` returns the polynomial `Fₚ(n) = Σ_{i=1}^{n} iᵖ`.
//! Because `Fₚ(n) − Fₚ(n−1) = nᵖ` is a *polynomial identity*, the
//! telescoped form `Fₚ(U) − Fₚ(L−1)` equals `Σ_{i=L}^{U} iᵖ` for **any**
//! integers `L ≤ U`, including negative bounds — which is why the
//! summation engine can use it directly instead of the paper's §4.2
//! four-piece decomposition (kept in `presburger-counting` as an
//! alternate, property-tested path).
//!
//! The paper hard-codes formulas for `p ≤ 10`; we compute them for any
//! `p ≤ 32` from the recurrence
//! `(n+1)^{p+1} − 1 = Σ_{j=0}^{p} C(p+1, j)·Fⱼ(n)`.

use crate::qpoly::QPoly;
use presburger_arith::{Int, Rat};
use presburger_omega::VarId;

/// Maximum supported exponent.
pub const MAX_POWER: u32 = 32;

/// Binomial coefficient `C(n, k)` as an exact integer.
///
/// ```
/// use presburger_polyq::faulhaber::binomial;
/// assert_eq!(binomial(10, 3), presburger_arith::Int::from(120));
/// ```
pub fn binomial(n: u32, k: u32) -> Int {
    if k > n {
        return Int::zero();
    }
    let k = k.min(n - k);
    let mut num = Int::one();
    let mut den = Int::one();
    for i in 0..k {
        num = num * Int::from(n - i);
        den = den * Int::from(i + 1);
    }
    num / den
}

/// The polynomial `Fₚ(v) = Σ_{i=1}^{v} iᵖ` in the variable `v`.
///
/// `F₀(v) = v`, `F₁(v) = v(v+1)/2`, `F₂(v) = v(v+1)(2v+1)/6`, …
///
/// ```
/// use presburger_arith::{Int, Rat};
/// use presburger_omega::Space;
/// use presburger_polyq::faulhaber::power_sum;
///
/// let mut s = Space::new();
/// let n = s.var("n");
/// let f2 = power_sum(2, n);
/// // 1 + 4 + 9 + 16 = 30
/// assert_eq!(f2.eval(&|_| Int::from(4)), Rat::from(30));
/// ```
///
/// # Panics
///
/// Panics if `p > MAX_POWER`.
///
/// When memoization is [active](presburger_trace::memo::active) the
/// polynomial is served from the memo table under
/// `MemoDomain::Faulhaber`, keyed on `(p, v)` — the function is pure,
/// and the counting engine asks for the same few exponents over and
/// over (once per convex sum per nesting level).
pub fn power_sum(p: u32, v: VarId) -> QPoly {
    use presburger_trace::memo::{self, MemoDomain};
    use std::sync::Arc;
    if !memo::active() {
        return power_sum_impl(p, v);
    }
    let mut key = Vec::with_capacity(8);
    key.extend_from_slice(&p.to_le_bytes());
    key.extend_from_slice(&(v.index() as u32).to_le_bytes());
    if let Some(hit) = memo::lookup(MemoDomain::Faulhaber, &key) {
        if let Ok(f) = hit.downcast::<QPoly>() {
            return (*f).clone();
        }
    }
    let guard = memo::begin_record();
    let f = power_sum_impl(p, v);
    let delta = guard.finish();
    // F_p has p+1 terms, each a monomial with a rational coefficient.
    let bytes = 96 * (p as usize + 2);
    memo::record(
        MemoDomain::Faulhaber,
        &key,
        Arc::new(f.clone()),
        delta,
        bytes,
    );
    f
}

fn power_sum_impl(p: u32, v: VarId) -> QPoly {
    assert!(p <= MAX_POWER, "power sum exponent {p} exceeds {MAX_POWER}");
    // Compute F_0 .. F_p by the recurrence
    //   (n+1)^{p+1} - 1 = sum_{j=0}^{p} C(p+1, j) F_j(n)
    // => F_p = [ (n+1)^{p+1} - 1 - sum_{j<p} C(p+1,j) F_j ] / (p+1)
    let n = QPoly::var(v);
    let n_plus_1 = n.clone() + QPoly::one();
    let mut fs: Vec<QPoly> = Vec::with_capacity(p as usize + 1);
    for q in 0..=p {
        // (n+1)^{q+1} - 1
        let mut lhs = QPoly::one();
        for _ in 0..=q {
            lhs = lhs * n_plus_1.clone();
        }
        lhs = lhs - QPoly::one();
        for (j, fj) in fs.iter().enumerate() {
            let c = Rat::from(binomial(q + 1, j as u32));
            lhs = lhs - fj.scale(&c);
        }
        fs.push(lhs.scale(&Rat::new(Int::one(), Int::from(q + 1))));
    }
    fs.pop().unwrap()
}

/// `Σ_{i=L}^{U} iᵖ` as a polynomial in whatever `lower` and `upper`
/// mention: `Fₚ(U) − Fₚ(L−1)`.
///
/// The result is correct whenever `L ≤ U` (the caller guards the sum);
/// bounds may be arbitrary polynomials (e.g. containing mod atoms).
pub fn sum_powers(p: u32, lower: &QPoly, upper: &QPoly, scratch: VarId) -> QPoly {
    presburger_trace::bump(match p {
        0 => presburger_trace::Counter::FaulhaberDeg0,
        1 => presburger_trace::Counter::FaulhaberDeg1,
        2 => presburger_trace::Counter::FaulhaberDeg2,
        3 => presburger_trace::Counter::FaulhaberDeg3,
        _ => presburger_trace::Counter::FaulhaberDegHi,
    });
    let f = power_sum(p, scratch);
    let at_upper = f.substitute(scratch, upper);
    let lm1 = lower.clone() - QPoly::one();
    let at_lower = f.substitute(scratch, &lm1);
    at_upper - at_lower
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Space;

    #[test]
    fn binomials() {
        assert_eq!(binomial(0, 0), Int::one());
        assert_eq!(binomial(5, 0), Int::one());
        assert_eq!(binomial(5, 5), Int::one());
        assert_eq!(binomial(5, 2), Int::from(10));
        assert_eq!(binomial(3, 7), Int::zero());
        assert_eq!(binomial(30, 15), Int::from(155117520));
    }

    #[test]
    fn known_formulas() {
        let mut s = Space::new();
        let n = s.var("n");
        // F_1(n) = n(n+1)/2
        let f1 = power_sum(1, n);
        let expect = (QPoly::var(n) * (QPoly::var(n) + QPoly::one()))
            .scale(&Rat::new(Int::one(), Int::from(2)));
        assert_eq!(f1, expect);
        // F_3(10) = (55)^2 = 3025
        let f3 = power_sum(3, n);
        assert_eq!(f3.eval(&|_| Int::from(10)), Rat::from(3025));
    }

    #[test]
    fn matches_brute_force_up_to_p10() {
        let mut s = Space::new();
        let n = s.var("n");
        for p in 0..=10u32 {
            let f = power_sum(p, n);
            for nv in 0i64..=12 {
                let brute: i128 = (1..=nv as i128).map(|i| i.pow(p)).sum();
                assert_eq!(
                    f.eval(&|_| Int::from(nv)),
                    Rat::from(Int::from(brute)),
                    "p={p} n={nv}"
                );
            }
        }
    }

    #[test]
    fn telescoping_handles_negative_bounds() {
        let mut s = Space::new();
        let scratch = s.var("t");
        for p in 0..=4u32 {
            for l in -6i64..=6 {
                for u in l..=6 {
                    let lp = QPoly::constant(Rat::from(l));
                    let up = QPoly::constant(Rat::from(u));
                    let val = sum_powers(p, &lp, &up, scratch)
                        .as_constant()
                        .expect("constant");
                    let brute: i128 = (l as i128..=u as i128).map(|i| i.pow(p)).sum();
                    assert_eq!(val, Rat::from(Int::from(brute)), "p={p} L={l} U={u}");
                }
            }
        }
    }

    #[test]
    fn polynomial_identity_fp_difference() {
        // F_p(n) - F_p(n-1) == n^p as polynomials
        let mut s = Space::new();
        let n = s.var("n");
        for p in 0..=6u32 {
            let f = power_sum(p, n);
            let shifted = f.substitute(n, &(QPoly::var(n) - QPoly::one()));
            let mut npow = QPoly::one();
            for _ in 0..p {
                npow = npow * QPoly::var(n);
            }
            assert_eq!(f.clone() - shifted, npow, "p={p}");
        }
    }

    #[test]
    fn high_power_is_exact() {
        let mut s = Space::new();
        let n = s.var("n");
        let f = power_sum(20, n);
        let brute: i128 = (1..=8i128).map(|i| i.pow(20)).sum();
        assert_eq!(f.eval(&|_| Int::from(8)), Rat::from(Int::from(brute)));
    }
}
