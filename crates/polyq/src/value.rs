//! Guarded (piecewise) symbolic values — the paper's answer format.
//!
//! A result like `(Σ : 1 ≤ n : n²)` (§1) is a *guarded* quasi-
//! polynomial: the value is `n²` when the guard holds and `0`
//! otherwise. A [`GuardedValue`] is a formal **sum** of such pieces;
//! pieces need not be disjoint (two overlapping pieces both contribute
//! where they overlap), which makes addition trivial and matches the
//! paper's use of `+` between guarded summations.

use crate::qpoly::QPoly;
use presburger_arith::{Int, Rat};
use presburger_omega::{Conjunct, Space, VarId};

/// One guarded term: contributes `value` where `guard` holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Piece {
    /// The guard over the symbolic constants (wildcard-free up to
    /// stride constraints).
    pub guard: Conjunct,
    /// The quasi-polynomial contributed where the guard holds.
    pub value: QPoly,
}

/// A formal sum of guarded quasi-polynomials.
///
/// ```
/// use presburger_arith::{Int, Rat};
/// use presburger_omega::{Affine, Conjunct, Space};
/// use presburger_polyq::{GuardedValue, QPoly};
///
/// let mut s = Space::new();
/// let n = s.var("n");
/// // (Σ : 1 ≤ n : n)
/// let mut g = Conjunct::new();
/// g.add_geq(Affine::from_terms(&[(n, 1)], -1));
/// let v = GuardedValue::piece(g, QPoly::var(n));
/// assert_eq!(v.eval(&s, &|_| Int::from(7)), Rat::from(7));
/// assert_eq!(v.eval(&s, &|_| Int::from(0)), Rat::zero());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuardedValue {
    pieces: Vec<Piece>,
}

impl GuardedValue {
    /// The zero value (no pieces).
    pub fn zero() -> GuardedValue {
        GuardedValue::default()
    }

    /// A single unguarded polynomial (guard = true).
    pub fn unguarded(value: QPoly) -> GuardedValue {
        GuardedValue::piece(Conjunct::new(), value)
    }

    /// A single guarded piece.
    pub fn piece(guard: Conjunct, value: QPoly) -> GuardedValue {
        let mut v = GuardedValue::zero();
        v.push(guard, value);
        v
    }

    /// Appends a piece (dropping syntactically false/zero pieces).
    pub fn push(&mut self, guard: Conjunct, value: QPoly) {
        if guard.is_false() || value.is_zero() {
            return;
        }
        self.pieces.push(Piece { guard, value });
    }

    /// The pieces of this value.
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// Returns `true` if there are no pieces (the value is identically 0).
    pub fn is_zero(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Adds another guarded value (formal concatenation).
    pub fn add(&mut self, other: GuardedValue) {
        self.pieces.extend(other.pieces);
    }

    /// Multiplies every piece's polynomial by `k`.
    pub fn scale(&self, k: &Rat) -> GuardedValue {
        if k.is_zero() {
            return GuardedValue::zero();
        }
        GuardedValue {
            pieces: self
                .pieces
                .iter()
                .map(|p| Piece {
                    guard: p.guard.clone(),
                    value: p.value.scale(k),
                })
                .collect(),
        }
    }

    /// Applies `f` to every piece's guard (pieces whose new guard is
    /// contradictory are dropped).
    pub fn map_guards(&self, mut f: impl FnMut(&Conjunct) -> Conjunct) -> GuardedValue {
        GuardedValue {
            pieces: self
                .pieces
                .iter()
                .map(|p| Piece {
                    guard: f(&p.guard),
                    value: p.value.clone(),
                })
                .filter(|p| !p.guard.is_false())
                .collect(),
        }
    }

    /// Applies `f` to every piece's polynomial.
    pub fn map_values(&self, f: impl Fn(&QPoly) -> QPoly) -> GuardedValue {
        GuardedValue {
            pieces: self
                .pieces
                .iter()
                .map(|p| Piece {
                    guard: p.guard.clone(),
                    value: f(&p.value),
                })
                .filter(|p| !p.value.is_zero())
                .collect(),
        }
    }

    /// Merges pieces with identical guards and drops empty pieces.
    pub fn compact(&mut self) {
        let mut out: Vec<Piece> = Vec::with_capacity(self.pieces.len());
        for p in self.pieces.drain(..) {
            if let Some(existing) = out.iter_mut().find(|q| q.guard == p.guard) {
                existing.value = std::mem::take(&mut existing.value) + p.value;
            } else {
                out.push(p);
            }
        }
        out.retain(|p| !p.value.is_zero() && !p.guard.is_false());
        self.pieces = out;
    }

    /// Evaluates the value at a concrete assignment of the symbols.
    pub fn eval(&self, space: &Space, assign: &dyn Fn(VarId) -> Int) -> Rat {
        let mut acc = Rat::zero();
        for p in &self.pieces {
            if p.guard.contains_point(space, assign) {
                acc += &p.value.eval(assign);
            }
        }
        acc
    }

    /// Evaluates and requires an integral result.
    pub fn eval_int(&self, space: &Space, assign: &dyn Fn(VarId) -> Int) -> Option<Int> {
        self.eval(space, assign).to_int()
    }

    /// Convenience evaluation by variable *name*: unknown names panic.
    ///
    /// # Panics
    ///
    /// Panics if a mentioned variable is missing from `bindings`.
    pub fn eval_named(&self, space: &Space, bindings: &[(&str, i64)]) -> Rat {
        self.eval(space, &|v| {
            let name = space.name(v);
            let (_, val) = bindings
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("no binding for symbol {name}"));
            Int::from(*val)
        })
    }

    /// Like [`GuardedValue::eval_named`] but requiring an integer.
    pub fn eval_i64(&self, space: &Space, bindings: &[(&str, i64)]) -> Option<i64> {
        self.eval_named(space, bindings)
            .to_int()
            .and_then(|i| i.to_i64())
    }

    /// Renders the value in the paper's notation:
    /// `(Σ : guard : poly) + …`.
    pub fn to_string(&self, space: &Space) -> String {
        if self.pieces.is_empty() {
            return "0".to_string();
        }
        self.pieces
            .iter()
            .map(|p| {
                if p.guard.is_trivially_true() {
                    p.value.to_string(space)
                } else {
                    format!(
                        "(Σ : {} : {})",
                        p.guard.to_string(space),
                        p.value.to_string(space)
                    )
                }
            })
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presburger_omega::Affine;

    fn guard_ge(space: &mut Space, name: &str, k: i64) -> Conjunct {
        let v = space.var(name);
        let mut g = Conjunct::new();
        g.add_geq(Affine::from_terms(&[(v, 1)], -k));
        g
    }

    #[test]
    fn pieces_are_additive() {
        let mut s = Space::new();
        let n = s.var("n");
        let g1 = guard_ge(&mut s, "n", 1); // n >= 1
        let g5 = guard_ge(&mut s, "n", 5); // n >= 5
        let mut v = GuardedValue::piece(g1, QPoly::var(n));
        v.add(GuardedValue::piece(g5, QPoly::one()));
        // n=3: only first piece; n=7: both
        assert_eq!(v.eval(&s, &|_| Int::from(3)), Rat::from(3));
        assert_eq!(v.eval(&s, &|_| Int::from(7)), Rat::from(8));
        assert_eq!(v.eval(&s, &|_| Int::from(0)), Rat::zero());
    }

    #[test]
    fn compact_merges_equal_guards() {
        let mut s = Space::new();
        let n = s.var("n");
        let g = guard_ge(&mut s, "n", 1);
        let mut v = GuardedValue::piece(g.clone(), QPoly::var(n));
        v.add(GuardedValue::piece(g, QPoly::var(n)));
        assert_eq!(v.pieces().len(), 2);
        v.compact();
        assert_eq!(v.pieces().len(), 1);
        assert_eq!(v.eval(&s, &|_| Int::from(4)), Rat::from(8));
    }

    #[test]
    fn compact_drops_cancelled_pieces() {
        let mut s = Space::new();
        let n = s.var("n");
        let g = guard_ge(&mut s, "n", 1);
        let mut v = GuardedValue::piece(g.clone(), QPoly::var(n));
        v.add(GuardedValue::piece(g, -QPoly::var(n)));
        v.compact();
        assert!(v.is_zero());
    }

    #[test]
    fn eval_named_and_display() {
        let mut s = Space::new();
        let n = s.var("n");
        let g = guard_ge(&mut s, "n", 1);
        let v = GuardedValue::piece(g, QPoly::var(n) * QPoly::var(n));
        assert_eq!(v.eval_i64(&s, &[("n", 6)]), Some(36));
        let txt = v.to_string(&s);
        assert!(txt.contains("Σ"), "{txt}");
        assert!(txt.contains("n^2"), "{txt}");
    }

    #[test]
    fn strided_guard() {
        let mut s = Space::new();
        let n = s.var("n");
        let mut g = Conjunct::new();
        g.add_stride(Int::from(2), Affine::var(n));
        let v = GuardedValue::piece(g, QPoly::one());
        assert_eq!(v.eval(&s, &|_| Int::from(4)), Rat::from(1));
        assert_eq!(v.eval(&s, &|_| Int::from(5)), Rat::zero());
    }
}
