//! Atoms: the "variables" a quasi-polynomial may mention.
//!
//! Beyond plain interned variables, the paper's symbolic answers for
//! rational (floored) bounds contain terms like `n mod 3` (§4.2.1):
//! `⌊U/u⌋` is rewritten as `(U − (U mod u))/u`. A [`Atom::Mod`] captures
//! such a periodic term exactly; its value always lies in
//! `[0, modulus)`.

use presburger_arith::Int;
use presburger_omega::{Affine, Space, VarId};

/// A quasi-polynomial indeterminate.
// `Mod` is large because `Affine` keeps up to four coefficients inline
// (`arith::Row`); boxing it would put an indirection back on every
// evaluation and comparison of the common periodic-term case.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// An interned variable (symbolic constant or summation variable).
    Var(VarId),
    /// `expr mod modulus`, with value in `[0, modulus)`.
    Mod {
        /// The affine expression being reduced.
        expr: Affine,
        /// The (positive) modulus.
        modulus: Int,
    },
}

impl Atom {
    /// Creates a `expr mod modulus` atom.
    ///
    /// The expression is canonicalized by reducing every coefficient
    /// and the constant into `[0, modulus)` — `(3j + 2n) mod 3` and
    /// `(2n) mod 3` are the same atom, which both deduplicates atoms
    /// and drops variables whose coefficient is a multiple of the
    /// modulus.
    ///
    /// # Panics
    ///
    /// Panics if `modulus <= 1`.
    pub fn modulo(expr: Affine, modulus: Int) -> Atom {
        assert!(
            modulus > Int::one(),
            "mod atom requires modulus >= 2 (got {modulus})"
        );
        let mut reduced = Affine::constant(expr.constant_term().rem_euclid(&modulus));
        for (v, c) in expr.iter() {
            reduced.set_coeff(v, c.rem_euclid(&modulus));
        }
        Atom::Mod {
            expr: reduced,
            modulus,
        }
    }

    /// Evaluates the atom at a concrete point.
    pub fn eval(&self, assign: &dyn Fn(VarId) -> Int) -> Int {
        match self {
            Atom::Var(v) => assign(*v),
            Atom::Mod { expr, modulus } => expr.eval(assign).rem_euclid(modulus),
        }
    }

    /// The variables mentioned by the atom.
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            Atom::Var(v) => vec![*v],
            Atom::Mod { expr, .. } => expr.vars().collect(),
        }
    }

    /// Returns `true` if the atom mentions `v`.
    pub fn mentions(&self, v: VarId) -> bool {
        match self {
            Atom::Var(w) => *w == v,
            Atom::Mod { expr, .. } => expr.mentions(v),
        }
    }

    /// Renders the atom with names from `space`.
    pub fn to_string(&self, space: &Space) -> String {
        match self {
            Atom::Var(v) => space.name(*v).to_string(),
            Atom::Mod { expr, modulus } => {
                format!("(({}) mod {})", expr.to_string(space), modulus)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_atom_eval_is_euclidean() {
        let mut s = Space::new();
        let n = s.var("n");
        let a = Atom::modulo(Affine::var(n), Int::from(3));
        for nv in -7i64..=7 {
            let r = a.eval(&|_| Int::from(nv));
            assert_eq!(r, Int::from(nv.rem_euclid(3)), "n={nv}");
        }
    }

    #[test]
    #[should_panic(expected = "modulus >= 2")]
    fn mod_atom_rejects_unit_modulus() {
        let mut s = Space::new();
        let n = s.var("n");
        let _ = Atom::modulo(Affine::var(n), Int::one());
    }

    #[test]
    fn display() {
        let mut s = Space::new();
        let n = s.var("n");
        assert_eq!(Atom::Var(n).to_string(&s), "n");
        assert_eq!(
            Atom::modulo(Affine::var(n), Int::from(2)).to_string(&s),
            "((n) mod 2)"
        );
    }
}
