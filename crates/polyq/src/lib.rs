//! Quasi-polynomials and guarded symbolic values for the `presburger`
//! workspace.
//!
//! The answers of the paper's counting engine are *guarded
//! quasi-polynomials*: piecewise polynomials in the symbolic constants
//! whose indeterminates may include periodic `mod` terms such as
//! `n mod 3` (§4.2.1), guarded by linear conditions such as `1 ≤ n`
//! (the paper's `(Σ : P : z)` notation).
//!
//! * [`Atom`] — a polynomial indeterminate: a variable or `e mod c`;
//! * [`QPoly`] — multivariate quasi-polynomials over ℚ;
//! * [`faulhaber`] — power-sum formulas `Σ iᵖ` (§4.1);
//! * [`GuardedValue`] — formal sums of guarded pieces.
//!
//! # Example
//!
//! ```
//! use presburger_arith::{Int, Rat};
//! use presburger_omega::Space;
//! use presburger_polyq::faulhaber::power_sum;
//!
//! let mut s = Space::new();
//! let n = s.var("n");
//! // Σ_{i=1}^{n} i²  =  n(n+1)(2n+1)/6
//! let f = power_sum(2, n);
//! assert_eq!(f.eval(&|_| Int::from(100)), Rat::from(338350));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
pub mod faulhaber;
pub mod mexpr;
mod qpoly;
mod value;

pub use atom::Atom;
pub use qpoly::QPoly;
pub use value::{GuardedValue, Piece};
