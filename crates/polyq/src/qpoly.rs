//! Multivariate quasi-polynomials over ℚ.
//!
//! A [`QPoly`] is a polynomial whose indeterminates are [`Atom`]s —
//! plain variables or periodic `mod` terms — with rational
//! coefficients. This is the closure of the answers the paper's
//! summation engine produces: counting a box gives a polynomial,
//! rational bounds introduce `mod` atoms (§4.2.1), and repeated
//! summation keeps the representation closed.

use crate::atom::Atom;
use presburger_arith::{Int, Rat};
use presburger_omega::{Affine, Space, VarId};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A monomial: atoms with positive exponents, sorted.
pub(crate) type Monomial = BTreeMap<Atom, u32>;

/// A multivariate quasi-polynomial with rational coefficients.
///
/// ```
/// use presburger_arith::{Int, Rat};
/// use presburger_polyq::QPoly;
/// use presburger_omega::Space;
///
/// let mut s = Space::new();
/// let n = s.var("n");
/// // n·(n+1)/2
/// let p = (QPoly::var(n) * (QPoly::var(n) + QPoly::constant(Rat::from(1))))
///     .scale(&Rat::new(Int::from(1), Int::from(2)));
/// assert_eq!(p.eval_int(&|_| Int::from(10)).unwrap(), Int::from(55));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct QPoly {
    /// Map monomial → coefficient; zero coefficients are never stored.
    terms: BTreeMap<Monomial, Rat>,
}

impl QPoly {
    /// The zero polynomial.
    pub fn zero() -> QPoly {
        QPoly::default()
    }

    /// The constant polynomial `1`.
    pub fn one() -> QPoly {
        QPoly::constant(Rat::one())
    }

    /// A constant polynomial.
    pub fn constant(c: Rat) -> QPoly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::new(), c);
        }
        QPoly { terms }
    }

    /// The polynomial consisting of the single variable `v`.
    pub fn var(v: VarId) -> QPoly {
        QPoly::atom(Atom::Var(v))
    }

    /// The polynomial consisting of a single atom.
    pub fn atom(a: Atom) -> QPoly {
        let mut m = Monomial::new();
        m.insert(a, 1);
        let mut terms = BTreeMap::new();
        terms.insert(m, Rat::one());
        QPoly { terms }
    }

    /// Converts an affine expression into a (linear) polynomial.
    pub fn from_affine(e: &Affine) -> QPoly {
        let mut p = QPoly::constant(Rat::from(e.constant_term().clone()));
        for (v, c) in e.iter() {
            p = p + QPoly::var(v).scale(&Rat::from(c.clone()));
        }
        p
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the constant value if the polynomial is constant.
    pub fn as_constant(&self) -> Option<Rat> {
        match self.terms.len() {
            0 => Some(Rat::zero()),
            1 => {
                let (m, c) = self.terms.iter().next().unwrap();
                if m.is_empty() {
                    Some(c.clone())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Multiplies every coefficient by `k`.
    pub fn scale(&self, k: &Rat) -> QPoly {
        if k.is_zero() {
            return QPoly::zero();
        }
        QPoly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), c * k)).collect(),
        }
    }

    /// The total degree of the polynomial (0 for constants).
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.values().sum::<u32>())
            .max()
            .unwrap_or(0)
    }

    /// The highest power of `v` (as a plain variable atom).
    pub fn degree_in(&self, v: VarId) -> u32 {
        self.terms
            .keys()
            .map(|m| m.get(&Atom::Var(v)).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `v` occurs anywhere — as a variable atom or
    /// inside a mod atom.
    pub fn mentions(&self, v: VarId) -> bool {
        self.terms.keys().any(|m| m.keys().any(|a| a.mentions(v)))
    }

    /// All variables mentioned (including inside mod atoms).
    pub fn vars(&self) -> std::collections::BTreeSet<VarId> {
        let mut out = std::collections::BTreeSet::new();
        for m in self.terms.keys() {
            for a in m.keys() {
                out.extend(a.vars());
            }
        }
        out
    }

    /// Returns `true` if any atom is a mod atom.
    pub fn has_mod_atoms(&self) -> bool {
        self.terms
            .keys()
            .any(|m| m.keys().any(|a| matches!(a, Atom::Mod { .. })))
    }

    /// The distinct `(expr, modulus)` pairs of all mod atoms.
    pub fn mod_atoms(&self) -> Vec<(Affine, Int)> {
        let mut out: Vec<(Affine, Int)> = Vec::new();
        for m in self.terms.keys() {
            for a in m.keys() {
                if let Atom::Mod { expr, modulus } = a {
                    if !out.iter().any(|(e, mm)| e == expr && mm == modulus) {
                        out.push((expr.clone(), modulus.clone()));
                    }
                }
            }
        }
        out
    }

    /// Smart constructor for `expr mod m`: canonicalizes coefficients
    /// and folds to a constant when no variable survives the reduction.
    ///
    /// # Panics
    ///
    /// Panics if `m <= 1`.
    pub fn modulo(expr: &Affine, m: &Int) -> QPoly {
        let atom = Atom::modulo(expr.clone(), m.clone());
        match &atom {
            Atom::Mod { expr: reduced, .. } if reduced.is_constant() => {
                QPoly::constant(Rat::from(reduced.constant_term().rem_euclid(m)))
            }
            _ => QPoly::atom(atom),
        }
    }

    /// Writes the polynomial as `Σ cₖ·vᵏ` in `v`: returns coefficients
    /// indexed by the power of `v`. Requires that `v` not occur inside
    /// mod atoms (§4.3 polynomial sums).
    ///
    /// # Panics
    ///
    /// Panics if `v` occurs inside a mod atom.
    pub fn coefficients_in(&self, v: VarId) -> Vec<QPoly> {
        let deg = self.degree_in(v) as usize;
        let mut out = vec![QPoly::zero(); deg + 1];
        let av = Atom::Var(v);
        for (m, c) in &self.terms {
            for a in m.keys() {
                if let Atom::Mod { expr, .. } = a {
                    assert!(
                        !expr.mentions(v),
                        "cannot extract coefficients: variable occurs inside a mod atom"
                    );
                }
            }
            let k = m.get(&av).copied().unwrap_or(0) as usize;
            let mut rest = m.clone();
            rest.remove(&av);
            let mut term = BTreeMap::new();
            term.insert(rest, c.clone());
            out[k] = std::mem::take(&mut out[k]) + QPoly { terms: term };
        }
        out
    }

    /// Substitutes a polynomial for the *variable atom* `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` occurs inside a mod atom (substitute into the
    /// affine expression with [`QPoly::substitute_affine`] instead).
    pub fn substitute(&self, v: VarId, replacement: &QPoly) -> QPoly {
        let coeffs = self.coefficients_in(v);
        let mut acc = QPoly::zero();
        let mut power = QPoly::one();
        for c in coeffs {
            acc = acc + c * power.clone();
            power = power * replacement.clone();
        }
        acc
    }

    /// Substitutes the rational affine expression `num/den` for `v`
    /// everywhere, including inside mod atoms.
    ///
    /// The caller must guarantee that `num/den` is an integer wherever
    /// the polynomial is evaluated (in the counting engine this is
    /// enforced by stride guards). Mod atoms are rewritten with the
    /// identity `((c·num + den·S) mod (m·den))/den = (c·num/den + S) mod m`,
    /// which holds exactly when `den` divides `c·num + den·S`.
    ///
    /// # Panics
    ///
    /// Panics if `den <= 0`.
    pub fn substitute_rational(&self, v: VarId, num: &Affine, den: &Int) -> QPoly {
        assert!(den.is_positive(), "denominator must be positive");
        if den.is_one() {
            return self.substitute_affine(v, num);
        }
        let inv = Rat::new(Int::one(), den.clone());
        let mut out = QPoly::zero();
        for (m, c) in &self.terms {
            let mut factor = QPoly::constant(c.clone());
            for (a, k) in m {
                let base = match a {
                    Atom::Var(w) if *w == v => QPoly::from_affine(num).scale(&inv),
                    Atom::Var(w) => QPoly::var(*w),
                    Atom::Mod { expr, modulus } => {
                        let cv = expr.coeff(v);
                        if cv.is_zero() {
                            QPoly::atom(a.clone())
                        } else {
                            let mut s = expr.clone();
                            s.set_coeff(v, Int::zero());
                            // c·num + den·S  mod  m·den, then /den
                            let mut e = Affine::zero().add_scaled(num, &cv);
                            e = e.add_scaled(&s, den);
                            QPoly::modulo(&e, &(modulus * den)).scale(&inv)
                        }
                    }
                };
                for _ in 0..*k {
                    factor = factor * base.clone();
                }
            }
            out = out + factor;
        }
        out
    }

    /// Substitutes an affine expression for `v` everywhere, including
    /// inside mod atoms.
    pub fn substitute_affine(&self, v: VarId, replacement: &Affine) -> QPoly {
        // First rewrite mod atoms, then the variable atoms.
        let mut rewritten = QPoly::zero();
        for (m, c) in &self.terms {
            let mut factor = QPoly::constant(c.clone());
            for (a, k) in m {
                let base = match a {
                    Atom::Var(w) if *w == v => QPoly::from_affine(replacement),
                    Atom::Var(w) => QPoly::var(*w),
                    Atom::Mod { expr, modulus } => {
                        let e2 = expr.substitute(v, replacement);
                        QPoly::modulo(&e2, modulus)
                    }
                };
                for _ in 0..*k {
                    factor = factor * base.clone();
                }
            }
            rewritten = rewritten + factor;
        }
        rewritten
    }

    /// Evaluates to an exact rational at a concrete point.
    pub fn eval(&self, assign: &dyn Fn(VarId) -> Int) -> Rat {
        let mut acc = Rat::zero();
        for (m, c) in &self.terms {
            let mut term = c.clone();
            for (a, k) in m {
                let val = Rat::from(a.eval(assign));
                term = term * val.pow(*k);
            }
            acc += &term;
        }
        acc
    }

    /// Evaluates and requires an integer result.
    ///
    /// Returns `None` when the value is not integral (which indicates a
    /// bug in a counting computation — counts are always integers).
    pub fn eval_int(&self, assign: &dyn Fn(VarId) -> Int) -> Option<Int> {
        self.eval(assign).to_int()
    }

    /// Renders the polynomial with names from `space`.
    pub fn to_string(&self, space: &Space) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut parts = Vec::new();
        for (m, c) in self.terms.iter().rev() {
            let mut piece = String::new();
            if m.is_empty() {
                piece.push_str(&c.to_string());
            } else {
                if *c == -Rat::one() {
                    piece.push('-');
                } else if !c.is_one_rat() {
                    piece.push_str(&format!("{c}·"));
                }
                let atoms: Vec<String> = m
                    .iter()
                    .map(|(a, k)| {
                        if *k == 1 {
                            a.to_string(space)
                        } else {
                            format!("{}^{}", a.to_string(space), k)
                        }
                    })
                    .collect();
                piece.push_str(&atoms.join("·"));
            }
            parts.push(piece);
        }
        let mut s = parts[0].clone();
        for p in &parts[1..] {
            if let Some(stripped) = p.strip_prefix('-') {
                s.push_str(" - ");
                s.push_str(stripped);
            } else {
                s.push_str(" + ");
                s.push_str(p);
            }
        }
        s
    }

    fn insert_term(&mut self, m: Monomial, c: Rat) {
        if c.is_zero() {
            return;
        }
        match self.terms.entry(m) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(c);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let sum = e.get() + &c;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }
}

/// Private helper so `to_string` can test for coefficient 1.
trait IsOneRat {
    fn is_one_rat(&self) -> bool;
}
impl IsOneRat for Rat {
    fn is_one_rat(&self) -> bool {
        *self == Rat::one()
    }
}

impl Add for QPoly {
    type Output = QPoly;
    fn add(self, rhs: QPoly) -> QPoly {
        let mut out = self;
        for (m, c) in rhs.terms {
            out.insert_term(m, c);
        }
        out
    }
}

impl Sub for QPoly {
    type Output = QPoly;
    fn sub(self, rhs: QPoly) -> QPoly {
        self + (-rhs)
    }
}

impl Neg for QPoly {
    type Output = QPoly;
    fn neg(self) -> QPoly {
        QPoly {
            terms: self.terms.into_iter().map(|(m, c)| (m, -c)).collect(),
        }
    }
}

impl Mul for QPoly {
    type Output = QPoly;
    fn mul(self, rhs: QPoly) -> QPoly {
        let mut out = QPoly::zero();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &rhs.terms {
                let mut m = m1.clone();
                for (a, k) in m2 {
                    *m.entry(a.clone()).or_insert(0) += k;
                }
                out.insert_term(m, c1 * c2);
            }
        }
        out
    }
}

impl fmt::Debug for QPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QPoly({} terms)", self.terms.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Space, VarId, VarId) {
        let mut s = Space::new();
        let n = s.var("n");
        let m = s.var("m");
        (s, n, m)
    }

    #[test]
    fn ring_operations() {
        let (_, n, m) = setup();
        let p = QPoly::var(n) + QPoly::var(m);
        let q = QPoly::var(n) - QPoly::var(m);
        let prod = p.clone() * q.clone();
        // (n+m)(n-m) = n² - m²
        let eval = |poly: &QPoly, nv: i64, mv: i64| {
            poly.eval(&|v| if v == n { Int::from(nv) } else { Int::from(mv) })
        };
        for nv in -3i64..=3 {
            for mv in -3i64..=3 {
                assert_eq!(eval(&prod, nv, mv), Rat::from(nv * nv - mv * mv));
            }
        }
        assert!((p.clone() - p).is_zero());
    }

    #[test]
    fn constant_detection() {
        let (_, n, _) = setup();
        assert_eq!(QPoly::zero().as_constant(), Some(Rat::zero()));
        assert_eq!(
            QPoly::constant(Rat::from(7)).as_constant(),
            Some(Rat::from(7))
        );
        assert_eq!(QPoly::var(n).as_constant(), None);
    }

    #[test]
    fn coefficients_in_variable() {
        let (_, n, m) = setup();
        // n²·m + 2n + 3
        let p = QPoly::var(n) * QPoly::var(n) * QPoly::var(m)
            + QPoly::var(n).scale(&Rat::from(2))
            + QPoly::constant(Rat::from(3));
        let cs = p.coefficients_in(n);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].as_constant(), Some(Rat::from(3)));
        assert_eq!(cs[1].as_constant(), Some(Rat::from(2)));
        assert_eq!(cs[2], QPoly::var(m));
    }

    #[test]
    fn substitution_roundtrip() {
        let (_, n, m) = setup();
        // p(n) = n² + n, substitute n := m - 1
        let p = QPoly::var(n) * QPoly::var(n) + QPoly::var(n);
        let r = p.substitute(n, &(QPoly::var(m) - QPoly::one()));
        for mv in -4i64..=4 {
            let direct = (mv - 1) * (mv - 1) + (mv - 1);
            assert_eq!(r.eval(&|_| Int::from(mv)), Rat::from(direct));
        }
    }

    #[test]
    fn mod_atom_arithmetic() {
        let (_, n, _) = setup();
        // (n mod 2)² has the same value as n mod 2
        let a = QPoly::atom(Atom::modulo(Affine::var(n), Int::from(2)));
        let sq = a.clone() * a.clone();
        for nv in -5i64..=5 {
            assert_eq!(sq.eval(&|_| Int::from(nv)), a.eval(&|_| Int::from(nv)));
        }
        assert!(a.has_mod_atoms());
    }

    #[test]
    fn substitute_affine_rewrites_mod_atoms() {
        let (_, n, m) = setup();
        // p = (n mod 3); substitute n := m + 1
        let p = QPoly::atom(Atom::modulo(Affine::var(n), Int::from(3)));
        let r = p.substitute_affine(n, &(Affine::var(m) + Affine::constant(1)));
        for mv in -5i64..=5 {
            assert_eq!(
                r.eval(&|_| Int::from(mv)),
                Rat::from((mv + 1).rem_euclid(3)),
                "m={mv}"
            );
        }
    }

    #[test]
    fn eval_int_detects_non_integral() {
        let (_, n, _) = setup();
        let half = QPoly::var(n).scale(&Rat::new(Int::one(), Int::from(2)));
        assert_eq!(half.eval_int(&|_| Int::from(4)), Some(Int::from(2)));
        assert_eq!(half.eval_int(&|_| Int::from(3)), None);
    }

    #[test]
    fn display() {
        let (s, n, _) = setup();
        let p = QPoly::var(n) * QPoly::var(n) - QPoly::constant(Rat::from(1));
        let txt = p.to_string(&s);
        assert!(txt.contains("n^2"), "{txt}");
        assert!(txt.contains("- 1"), "{txt}");
    }

    #[test]
    fn modulo_smart_constructor_folds() {
        let (_, n, _) = setup();
        // (3n + 7) mod 3  reduces to a constant-free-of-n atom? no —
        // 3n ≡ 0, so it folds to the constant 1
        let p = QPoly::modulo(&Affine::from_terms(&[(n, 3)], 7), &Int::from(3));
        assert_eq!(p.as_constant(), Some(Rat::from(1)));
        // (2n + 7) mod 3 stays an atom but with reduced coefficients
        let p = QPoly::modulo(&Affine::from_terms(&[(n, 2)], 7), &Int::from(3));
        assert!(p.has_mod_atoms());
        for nv in -6i64..=6 {
            assert_eq!(
                p.eval(&|_| Int::from(nv)),
                Rat::from((2 * nv + 7).rem_euclid(3)),
                "n={nv}"
            );
        }
    }

    #[test]
    fn mod_atom_canonicalization_dedups() {
        let (_, n, _) = setup();
        // (−n) mod 3 and (2n) mod 3 are the same atom after reduction
        let a = QPoly::modulo(&Affine::from_terms(&[(n, -1)], 0), &Int::from(3));
        let b = QPoly::modulo(&Affine::from_terms(&[(n, 2)], 0), &Int::from(3));
        assert!((a.clone() - b).is_zero());
        assert_eq!(a.mod_atoms().len(), 1);
    }

    proptest::proptest! {
        /// substitute_rational agrees with direct evaluation whenever
        /// the substituted value is integral.
        #[test]
        fn substitute_rational_pointwise(
            cn in -4i64..=4, ck in -9i64..=9, den in 1i64..=4,
            modulus in 2i64..=5, mc in -4i64..=4,
            t in -8i64..=8,
        ) {
            let mut s = Space::new();
            let n = s.var("n");
            let v = s.var("v");
            // z = v + (mc·v + n) mod modulus  +  v·((v) mod modulus)
            let z = QPoly::var(v)
                + QPoly::modulo(&Affine::from_terms(&[(v, mc), (n, 1)], 0), &Int::from(modulus))
                + QPoly::var(v) * QPoly::modulo(&Affine::from_terms(&[(v, 1)], 0), &Int::from(modulus));
            // v := (cn·n + ck·den)/den — integral whenever den | cn·n
            let num = Affine::from_terms(&[(n, cn * den)], ck * den);
            let r = z.substitute_rational(v, &num, &Int::from(den));
            // value of v at concrete n
            let nv = t;
            let vv = cn * nv + ck; // = num/den exactly
            let direct = z.eval(&|w| if w == v { Int::from(vv) } else { Int::from(nv) });
            let subbed = r.eval(&|_| Int::from(nv));
            proptest::prop_assert_eq!(direct, subbed, "n={} v={}", nv, vv);
        }

        /// Multiplication distributes over evaluation.
        #[test]
        fn eval_is_ring_homomorphism(
            a0 in -5i64..=5, a1 in -5i64..=5,
            b0 in -5i64..=5, b1 in -5i64..=5,
            x in -6i64..=6,
        ) {
            let mut s = Space::new();
            let n = s.var("n");
            let p = QPoly::constant(Rat::from(a0)) + QPoly::var(n).scale(&Rat::from(a1));
            let q = QPoly::constant(Rat::from(b0)) + QPoly::var(n).scale(&Rat::from(b1));
            let ev = |poly: &QPoly| poly.eval(&|_| Int::from(x));
            proptest::prop_assert_eq!(ev(&(p.clone() * q.clone())), ev(&p) * ev(&q));
            proptest::prop_assert_eq!(ev(&(p.clone() + q.clone())), ev(&p) + ev(&q));
        }
    }
}
