//! Min/max/`p(·)` expressions — the answer form of \[HP93a\] and of
//! the paper's rejected alternative (§6: "We have developed a way of
//! introducing min's and max's into the result… the results tend to be
//! much more complicated").
//!
//! [`MExpr`] is a small expression language over integers with `min`,
//! `max` and the positivity indicator `p(x)` (1 if `x > 0`, else 0),
//! plus complexity metrics used by the experiments to compare answer
//! forms against guarded quasi-polynomials.

use presburger_arith::{Int, Rat};
use presburger_omega::{Affine, Space, VarId};

/// An expression over integers with `min`, `max` and the positivity
/// indicator `p(·)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MExpr {
    /// A rational constant.
    Const(Rat),
    /// A variable.
    Var(VarId),
    /// Sum of terms.
    Add(Vec<MExpr>),
    /// Product of factors.
    Mul(Vec<MExpr>),
    /// Binary minimum.
    Min(Box<MExpr>, Box<MExpr>),
    /// Binary maximum.
    Max(Box<MExpr>, Box<MExpr>),
    /// `p(x)`: 1 if `x > 0`, else 0.
    Pos(Box<MExpr>),
}

impl MExpr {
    /// Integer constant helper.
    pub fn int(v: i64) -> MExpr {
        MExpr::Const(Rat::from(v))
    }

    /// Converts an affine expression.
    pub fn from_affine(e: &Affine) -> MExpr {
        let mut terms = vec![MExpr::Const(Rat::from(e.constant_term().clone()))];
        for (v, c) in e.iter() {
            terms.push(MExpr::Mul(vec![
                MExpr::Const(Rat::from(c.clone())),
                MExpr::Var(v),
            ]));
        }
        MExpr::Add(terms)
    }

    /// Binary minimum helper.
    pub fn min2(a: MExpr, b: MExpr) -> MExpr {
        MExpr::Min(Box::new(a), Box::new(b))
    }

    /// Binary maximum helper.
    pub fn max2(a: MExpr, b: MExpr) -> MExpr {
        MExpr::Max(Box::new(a), Box::new(b))
    }

    /// The positivity guard `p(x)`.
    pub fn pos(x: MExpr) -> MExpr {
        MExpr::Pos(Box::new(x))
    }

    /// Evaluates the expression at a concrete point.
    pub fn eval(&self, assign: &dyn Fn(VarId) -> Int) -> Rat {
        match self {
            MExpr::Const(c) => c.clone(),
            MExpr::Var(v) => Rat::from(assign(*v)),
            MExpr::Add(ts) => ts.iter().map(|t| t.eval(assign)).sum(),
            MExpr::Mul(ts) => ts.iter().fold(Rat::one(), |acc, t| acc * t.eval(assign)),
            MExpr::Min(a, b) => a.eval(assign).min(b.eval(assign)),
            MExpr::Max(a, b) => a.eval(assign).max(b.eval(assign)),
            MExpr::Pos(x) => {
                if x.eval(assign).is_positive() {
                    Rat::one()
                } else {
                    Rat::zero()
                }
            }
        }
    }

    /// Number of nodes — a proxy for expression complexity.
    pub fn size(&self) -> usize {
        1 + match self {
            MExpr::Const(_) | MExpr::Var(_) => 0,
            MExpr::Add(ts) | MExpr::Mul(ts) => ts.iter().map(MExpr::size).sum(),
            MExpr::Min(a, b) | MExpr::Max(a, b) => a.size() + b.size(),
            MExpr::Pos(x) => x.size(),
        }
    }

    /// Number of `min`/`max`/`p` operators — the paper's qualitative
    /// complaint about this answer form.
    pub fn minmax_count(&self) -> usize {
        match self {
            MExpr::Const(_) | MExpr::Var(_) => 0,
            MExpr::Add(ts) | MExpr::Mul(ts) => ts.iter().map(MExpr::minmax_count).sum(),
            MExpr::Min(a, b) | MExpr::Max(a, b) => 1 + a.minmax_count() + b.minmax_count(),
            MExpr::Pos(x) => 1 + x.minmax_count(),
        }
    }

    /// Renders the expression with names from `space`.
    pub fn to_string(&self, space: &Space) -> String {
        match self {
            MExpr::Const(c) => c.to_string(),
            MExpr::Var(v) => space.name(*v).to_string(),
            MExpr::Add(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_string(space)).collect();
                format!("({})", parts.join(" + "))
            }
            MExpr::Mul(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_string(space)).collect();
                parts.join("·")
            }
            MExpr::Min(a, b) => format!("min({}, {})", a.to_string(space), b.to_string(space)),
            MExpr::Max(a, b) => format!("max({}, {})", a.to_string(space), b.to_string(space)),
            MExpr::Pos(x) => format!("p({})", x.to_string(space)),
        }
    }
}

/// The Faulhaber polynomial `Fₖ` evaluated at an [`MExpr`] argument.
pub fn faulhaber_mexpr(k: u32, at: &MExpr) -> MExpr {
    let mut scratch = Space::new();
    let t = scratch.var("t");
    let f = crate::faulhaber::power_sum(k, t);
    let coeffs = f.coefficients_in(t);
    let mut terms = Vec::new();
    for (p, c) in coeffs.into_iter().enumerate() {
        let Some(c) = c.as_constant() else { continue };
        if c.is_zero() {
            continue;
        }
        let mut fac = vec![MExpr::Const(c)];
        for _ in 0..p {
            fac.push(at.clone());
        }
        terms.push(MExpr::Mul(fac));
    }
    if terms.is_empty() {
        MExpr::int(0)
    } else {
        MExpr::Add(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_and_eval() {
        let e = MExpr::min2(MExpr::int(3), MExpr::max2(MExpr::int(1), MExpr::int(2)));
        assert_eq!(e.minmax_count(), 2);
        assert_eq!(e.size(), 5);
        assert_eq!(e.eval(&|_| Int::zero()), Rat::from(2));
    }

    #[test]
    fn from_affine_matches() {
        let mut s = Space::new();
        let n = s.var("n");
        let e = MExpr::from_affine(&Affine::from_terms(&[(n, 3)], -4));
        for nv in -5i64..=5 {
            assert_eq!(e.eval(&|_| Int::from(nv)), Rat::from(3 * nv - 4));
        }
    }

    #[test]
    fn faulhaber_at_min() {
        let mut s = Space::new();
        let n = s.var("n");
        // F_2(min(n, 3)) = sum of squares up to min(n, 3)
        let at = MExpr::min2(MExpr::Var(n), MExpr::int(3));
        let f = faulhaber_mexpr(2, &at);
        for nv in 0i64..=6 {
            let top = nv.min(3);
            let brute: i64 = (1..=top).map(|x| x * x).sum();
            assert_eq!(f.eval(&|_| Int::from(nv)), Rat::from(brute), "n={nv}");
        }
    }

    #[test]
    fn pos_guard() {
        let mut s = Space::new();
        let n = s.var("n");
        let e = MExpr::pos(MExpr::Var(n));
        assert_eq!(e.eval(&|_| Int::from(5)), Rat::one());
        assert_eq!(e.eval(&|_| Int::from(0)), Rat::zero());
        assert_eq!(e.eval(&|_| Int::from(-2)), Rat::zero());
    }

    #[test]
    fn display() {
        let mut s = Space::new();
        let n = s.var("n");
        let e = MExpr::pos(MExpr::min2(MExpr::Var(n), MExpr::int(3)));
        assert_eq!(e.to_string(&s), "p(min(n, 3))");
    }
}
