//! Unimodularity and divisibility invariants of the Smith and Hermite
//! normal forms under random matrices.
//!
//! The in-crate tests check `U·A·V = D` and the divisibility chain on
//! hand-picked inputs; this file pins the full contract — including the
//! part nothing else exercised: `U` and `V` really are *unimodular*
//! (`|det| = 1`), which is what makes the §4.5.2 change of variables
//! count-preserving.

use presburger_arith::smith::{hermite_normal_form, smith_normal_form};
use presburger_arith::{Int, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, entries: &[i64]) -> Matrix {
    Matrix::from_i64(rows, cols, &entries[..rows * cols])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Smith: `U·A·V = D`, `U`/`V` unimodular, `D` diagonal with
    /// non-negative entries and `D[i,i] | D[i+1,i+1]`.
    #[test]
    fn smith_full_contract(
        rows in 1usize..=4,
        cols in 1usize..=4,
        entries in proptest::collection::vec(-9i64..=9, 16),
    ) {
        let a = matrix(rows, cols, &entries);
        let snf = smith_normal_form(&a);

        prop_assert_eq!(&(&snf.u * &a) * &snf.v, snf.d.clone());
        prop_assert_eq!(snf.u.det().abs(), Int::one(), "U not unimodular: {}", snf.u);
        prop_assert_eq!(snf.v.det().abs(), Int::one(), "V not unimodular: {}", snf.v);

        let dim = rows.min(cols);
        for i in 0..snf.d.rows() {
            for j in 0..snf.d.cols() {
                if i != j {
                    prop_assert!(snf.d[(i, j)].is_zero(), "off-diagonal at ({i},{j}): {}", snf.d);
                }
            }
        }
        for i in 0..dim {
            prop_assert!(!snf.d[(i, i)].is_negative(), "negative diagonal: {}", snf.d);
        }
        for i in 0..snf.rank {
            prop_assert!(!snf.d[(i, i)].is_zero(), "rank overcounts: {}", snf.d);
            if i + 1 < snf.rank {
                prop_assert!(
                    snf.d[(i, i)].divides(&snf.d[(i + 1, i + 1)]),
                    "divisibility chain broken: {}",
                    snf.d
                );
            }
        }
        for i in snf.rank..dim {
            prop_assert!(snf.d[(i, i)].is_zero(), "rank undercounts: {}", snf.d);
        }
    }

    /// Hermite: `H = A·Q` with `Q` unimodular and `H` lower triangular.
    #[test]
    fn hermite_full_contract(
        rows in 1usize..=4,
        cols in 1usize..=4,
        entries in proptest::collection::vec(-9i64..=9, 16),
    ) {
        let a = matrix(rows, cols, &entries);
        let (h, q) = hermite_normal_form(&a);

        prop_assert_eq!(&a * &q, h.clone());
        prop_assert_eq!(q.det().abs(), Int::one(), "Q not unimodular: {}", q);
    }

    /// The Bareiss determinant agrees with cofactor expansion and is
    /// multiplicative (`det(A·B) = det(A)·det(B)`).
    #[test]
    fn det_matches_cofactor_expansion(
        n in 1usize..=4,
        ea in proptest::collection::vec(-9i64..=9, 16),
        eb in proptest::collection::vec(-9i64..=9, 16),
    ) {
        fn cofactor_det(m: &Matrix) -> Int {
            let n = m.rows();
            if n == 1 {
                return m[(0, 0)].clone();
            }
            let mut acc = Int::zero();
            for j in 0..n {
                if m[(0, j)].is_zero() {
                    continue;
                }
                let mut sub = Matrix::zero(n - 1, n - 1);
                for i in 1..n {
                    let mut jj = 0;
                    for k in 0..n {
                        if k != j {
                            sub[(i - 1, jj)] = m[(i, k)].clone();
                            jj += 1;
                        }
                    }
                }
                let term = &m[(0, j)] * &cofactor_det(&sub);
                if j % 2 == 0 {
                    acc += &term;
                } else {
                    acc -= &term;
                }
            }
            acc
        }

        let a = matrix(n, n, &ea);
        let b = matrix(n, n, &eb);
        prop_assert_eq!(a.det(), cofactor_det(&a));
        prop_assert_eq!((&a * &b).det(), &a.det() * &b.det());
    }
}

/// Determinant edge cases the property tests would only hit by luck.
#[test]
fn det_edge_cases() {
    assert_eq!(Matrix::zero(0, 0).det(), Int::one());
    assert_eq!(Matrix::identity(5).det(), Int::one());
    assert_eq!(Matrix::zero(3, 3).det(), Int::zero());
    // Singular but with a non-zero leading pivot.
    assert_eq!(Matrix::from_i64(2, 2, &[2, 4, 1, 2]).det(), Int::zero());
    // Needs a row swap (zero pivot with recoverable rank).
    assert_eq!(Matrix::from_i64(2, 2, &[0, 1, 1, 0]).det(), Int::from(-1));
    // Sign and magnitude on a 3x3.
    assert_eq!(
        Matrix::from_i64(3, 3, &[2, -3, 1, 2, 0, -1, 1, 4, 5]).det(),
        Int::from(49)
    );
}
