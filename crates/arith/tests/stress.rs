//! Stress and edge-case tests for the arithmetic substrate: limb
//! boundaries, huge operands, rational ordering, and randomized
//! Smith/Hermite normal forms on larger matrices.

use presburger_arith::smith::{hermite_normal_form, smith_normal_form, solve_diophantine};
use presburger_arith::{egcd, gcd, lcm, mod_balanced, Int, Matrix, Rat};
use proptest::prelude::*;

fn big(s: &str) -> Int {
    s.parse().unwrap()
}

#[test]
fn limb_boundary_arithmetic() {
    // values straddling the i128 boundary
    let edge = Int::from(i128::MAX);
    let cases = [
        (
            &edge + &Int::one(),
            "170141183460469231731687303715884105728",
        ),
        (&edge + &edge, "340282366920938463463374607431768211454"),
        (
            &(&edge * &edge) + &Int::one(),
            "28948022309329048855892746252171976962977213799489202546401021394546514198530",
        ),
    ];
    for (v, expect) in cases {
        assert_eq!(v.to_string(), expect);
    }
    // subtraction back across the boundary
    let back = &(&edge + &Int::one()) - &Int::one();
    assert_eq!(back, edge);
    assert!(back.to_i128().is_some());
}

#[test]
fn u64_limb_carry_chains() {
    // 2^64 - 1 patterns exercise carry propagation
    let m = big("18446744073709551615"); // u64::MAX
    let m2 = &m * &m;
    assert_eq!(m2.to_string(), "340282366920938463426481119284349108225");
    let sum = &m2 + &m;
    assert_eq!(&sum % &m, Int::zero());
    assert_eq!(&sum / &m, &m + &Int::one());
}

#[test]
fn deep_division_chains() {
    // repeated divmod reconstructs the original (base conversion)
    let mut v = big("123456789123456789123456789123456789123456789");
    let base = Int::from(997);
    let mut digits = Vec::new();
    while !v.is_zero() {
        let (q, r) = v.div_rem(&base);
        digits.push(r);
        v = q;
    }
    let mut rebuilt = Int::zero();
    for d in digits.iter().rev() {
        rebuilt = &rebuilt * &base + d;
    }
    assert_eq!(
        rebuilt,
        big("123456789123456789123456789123456789123456789")
    );
}

#[test]
fn gcd_of_factorials() {
    let fact = |n: u32| -> Int { (1..=n).map(Int::from).product() };
    let f20 = fact(20);
    let f25 = fact(25);
    assert_eq!(gcd(&f20, &f25), f20);
    assert_eq!(lcm(&f20, &f25), f25);
    let (g, x, y) = egcd(&f20, &(&f25 + &Int::one()));
    assert_eq!(&f20 * &x + &(&f25 + &Int::one()) * &y, g);
}

#[test]
fn rational_ordering_with_huge_terms() {
    // 10^40 / (10^40 + 1)  <  1  <  (10^40 + 1) / 10^40
    let p = Int::from(10).pow(40);
    let p1 = &p + &Int::one();
    let a = Rat::new(p.clone(), p1.clone());
    let b = Rat::new(p1, p);
    assert!(a < Rat::one());
    assert!(Rat::one() < b);
    assert!(a < b);
    assert!(a.clone() * b.clone() <= Rat::one());
    assert_eq!(
        a * b,
        Rat::one() * Rat::one() * Rat::new(Int::one(), Int::one())
    );
}

#[test]
fn rat_floor_ceil_huge() {
    let p = Int::from(10).pow(30);
    let r = Rat::new(&p + &Int::from(1), p.clone()); // 1 + 1/10^30
    assert_eq!(r.floor(), Int::one());
    assert_eq!(r.ceil(), Int::from(2));
    let neg = -r;
    assert_eq!(neg.floor(), Int::from(-2));
    assert_eq!(neg.ceil(), Int::from(-1));
}

#[test]
fn balanced_mod_bigger_moduli() {
    for m in [7i64, 8, 101] {
        let mi = Int::from(m);
        for a in -250i64..=250 {
            let r = mod_balanced(&Int::from(a), &mi);
            // representative in (-m/2, m/2]
            assert!(Rat::new(r.clone(), Int::one()) <= Rat::new(mi.clone(), Int::from(2)));
            assert!(Rat::new(-r.clone(), Int::one()) < Rat::new(mi.clone(), Int::from(2)));
            assert!(mi.divides(&(&Int::from(a) - &r)));
        }
    }
}

#[test]
fn snf_rank_deficient_4x4() {
    // rank-2 matrix: rows 2 and 3 are combinations of rows 0 and 1
    let a = Matrix::from_i64(
        4,
        4,
        &[
            1, 2, 3, 4, //
            2, 3, 4, 5, //
            3, 5, 7, 9, //
            4, 7, 10, 13,
        ],
    );
    let snf = smith_normal_form(&a);
    assert_eq!(snf.rank, 2);
    assert_eq!(&(&snf.u * &a) * &snf.v, snf.d);
}

#[test]
fn diophantine_kernel_dimension() {
    // one equation, four unknowns: kernel of dimension 3
    let a = Matrix::from_i64(1, 4, &[2, 4, 6, 8]);
    let sol = solve_diophantine(&a, &[Int::from(10)]).unwrap();
    assert_eq!(sol.basis.cols(), 3);
    assert_eq!(a.mul_vec(&sol.particular), vec![Int::from(10)]);
    for k in 0..3 {
        assert_eq!(a.mul_vec(&sol.basis.col(k)), vec![Int::zero()]);
    }
    // odd target is unreachable (gcd 2)
    assert!(solve_diophantine(&a, &[Int::from(9)]).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a*b)/b == a and (a*b)%b == 0 for big random values.
    #[test]
    fn mul_div_roundtrip(al in proptest::collection::vec(any::<u64>(), 1..5),
                         bl in proptest::collection::vec(any::<u64>(), 1..4),
                         an in any::<bool>(), bn in any::<bool>()) {
        let a = make_int(an, &al);
        let b = make_int(bn, &bl);
        prop_assume!(!b.is_zero());
        let p = &a * &b;
        prop_assert_eq!(&p / &b, a);
        prop_assert!((&p % &b).is_zero());
    }

    /// gcd(a,b) divides both; egcd's Bézout identity holds for big values.
    #[test]
    fn gcd_properties_big(al in proptest::collection::vec(any::<u64>(), 1..4),
                          bl in proptest::collection::vec(any::<u64>(), 1..4)) {
        let a = make_int(false, &al);
        let b = make_int(true, &bl);
        let g = gcd(&a, &b);
        if !g.is_zero() {
            prop_assert!(g.divides(&a) && g.divides(&b));
        }
        let (g2, x, y) = egcd(&a, &b);
        prop_assert_eq!(&a * &x + &b * &y, g2.clone());
        prop_assert_eq!(g, g2);
    }

    /// Rational arithmetic keeps the canonical invariant under long
    /// operation chains.
    #[test]
    fn rat_chain_invariants(ops in proptest::collection::vec((0u8..4, -50i64..50, 1i64..30), 1..20)) {
        let mut acc = Rat::one();
        for (op, n, d) in ops {
            let r = Rat::new(Int::from(n), Int::from(d));
            acc = match op {
                0 => acc + r,
                1 => acc - r,
                2 => acc * r,
                _ => {
                    if r.is_zero() {
                        acc
                    } else {
                        acc / r
                    }
                }
            };
            // invariant: positive denominator, reduced
            prop_assert!(acc.denom().is_positive());
            prop_assert!(gcd(acc.numer(), acc.denom()).is_one()
                || acc.numer().is_zero());
        }
    }

    /// Random 3x4 Hermite forms verify A·Q = H with unimodular column ops.
    #[test]
    fn hermite_random(entries in proptest::collection::vec(-15i64..15, 12)) {
        let a = Matrix::from_i64(3, 4, &entries);
        let (h, q) = hermite_normal_form(&a);
        prop_assert_eq!(&a * &q, h);
    }

    /// pow matches repeated multiplication.
    #[test]
    fn pow_matches_iteration(base in -20i64..=20, exp in 0u32..=12) {
        let b = Int::from(base);
        let mut expect = Int::one();
        for _ in 0..exp {
            expect = &expect * &b;
        }
        prop_assert_eq!(b.pow(exp), expect);
    }
}

fn make_int(neg: bool, limbs: &[u64]) -> Int {
    // reconstruct an Int from limbs without private API: Σ limb·2^(64i)
    let base = &Int::from(u64::MAX) + &Int::one();
    let mut acc = Int::zero();
    for l in limbs.iter().rev() {
        acc = &acc * &base + &Int::from(*l);
    }
    if neg {
        -acc
    } else {
        acc
    }
}
