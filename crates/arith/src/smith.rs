//! Hermite and Smith normal forms, and a solver for systems of linear
//! Diophantine equations.
//!
//! The paper's §4.5.2 ("Projected Sums") rewrites a clause whose
//! variables are defined through auxiliary existentially-quantified
//! variables into an explicit parametric form. The engine behind that
//! rewrite is the Smith normal form `U·A·V = D` computed here, and the
//! derived [`solve_diophantine`] routine which returns the full integer
//! solution set `x = x0 + B·t` of `A·x = b`.

use crate::{Int, Matrix};

/// The Smith normal form decomposition `U * A * V = D` of an integer
/// matrix, with `U` and `V` unimodular and `D` diagonal with
/// non-negative entries satisfying `D[i,i] | D[i+1,i+1]`.
#[derive(Clone, Debug)]
pub struct SmithNormalForm {
    /// Left unimodular transform (`rows x rows`).
    pub u: Matrix,
    /// Diagonal matrix (`rows x cols`).
    pub d: Matrix,
    /// Right unimodular transform (`cols x cols`).
    pub v: Matrix,
    /// Rank of the matrix (number of non-zero diagonal entries).
    pub rank: usize,
}

/// Computes the Smith normal form of `a`.
///
/// A pure function of the matrix, so the result is memoized by
/// canonical matrix key when sub-problem memoization is active (see
/// `presburger_trace::memo`); the memo hit replays the original
/// computation's counter charges, keeping statistics byte-identical.
///
/// ```
/// use presburger_arith::{Matrix, smith::smith_normal_form};
///
/// let a = Matrix::from_i64(2, 2, &[2, 4, 6, 8]);
/// let snf = smith_normal_form(&a);
/// assert_eq!(&(&snf.u * &a) * &snf.v, snf.d);
/// assert_eq!(snf.rank, 2);
/// ```
pub fn smith_normal_form(a: &Matrix) -> SmithNormalForm {
    use presburger_trace::memo::{self, MemoDomain};
    use std::sync::Arc;

    if !memo::active() {
        return smith_normal_form_impl(a);
    }
    let mut key = Vec::with_capacity(8 + 4 * a.rows() * a.cols());
    a.push_key_bytes(&mut key);
    if let Some(hit) = memo::lookup(MemoDomain::Smith, &key) {
        if let Ok(snf) = hit.downcast::<SmithNormalForm>() {
            return (*snf).clone();
        }
    }
    let guard = memo::begin_record();
    let snf = smith_normal_form_impl(a);
    let delta = guard.finish();
    // Rough footprint: three matrices of mostly-small Ints.
    let bytes = 24
        * (snf.u.rows() * snf.u.cols() + snf.d.rows() * snf.d.cols() + snf.v.rows() * snf.v.cols());
    memo::record(MemoDomain::Smith, &key, Arc::new(snf.clone()), delta, bytes);
    snf
}

fn smith_normal_form_impl(a: &Matrix) -> SmithNormalForm {
    presburger_trace::bump(presburger_trace::Counter::SmithNormalFormCalls);
    let rows = a.rows();
    let cols = a.cols();
    let mut d = a.clone();
    let mut u = Matrix::identity(rows);
    let mut v = Matrix::identity(cols);

    let dim = rows.min(cols);
    let mut t = 0;
    while t < dim {
        // Find the entry with the smallest non-zero magnitude in the
        // trailing submatrix; it makes the best pivot.
        let mut pivot: Option<(usize, usize)> = None;
        for i in t..rows {
            for j in t..cols {
                if !d[(i, j)].is_zero()
                    && pivot.is_none_or(|(pi, pj)| d[(i, j)].abs() < d[(pi, pj)].abs())
                {
                    pivot = Some((i, j));
                }
            }
        }
        let Some((pi, pj)) = pivot else { break };
        d.swap_rows(t, pi);
        u.swap_rows(t, pi);
        d.swap_cols(t, pj);
        v.swap_cols(t, pj);

        // Reduce the pivot row and column to zero (outside the pivot).
        let mut dirty = true;
        while dirty {
            dirty = false;
            for i in t + 1..rows {
                if !d[(i, t)].is_zero() {
                    let q = d[(i, t)].div_floor(&d[(t, t)]);
                    d.add_row_multiple(i, t, &-q.clone());
                    u.add_row_multiple(i, t, &-q);
                    if !d[(i, t)].is_zero() {
                        // Remainder became the new, smaller pivot.
                        d.swap_rows(t, i);
                        u.swap_rows(t, i);
                        dirty = true;
                    }
                }
            }
            for j in t + 1..cols {
                if !d[(t, j)].is_zero() {
                    let q = d[(t, j)].div_floor(&d[(t, t)]);
                    d.add_col_multiple(j, t, &-q.clone());
                    v.add_col_multiple(j, t, &-q);
                    if !d[(t, j)].is_zero() {
                        d.swap_cols(t, j);
                        v.swap_cols(t, j);
                        dirty = true;
                    }
                }
            }
        }
        if d[(t, t)].is_negative() {
            d.negate_row(t);
            u.negate_row(t);
        }
        t += 1;
    }

    // Enforce the divisibility chain d[i] | d[i+1].
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..dim.saturating_sub(1) {
            let (di, dj) = (d[(i, i)].clone(), d[(i + 1, i + 1)].clone());
            if di.is_zero() || dj.is_zero() || (&dj % &di).is_zero() {
                continue;
            }
            // Standard trick: add column i+1 to column i, then re-reduce
            // the 2x2 block with row/column operations.
            d.add_col_multiple(i, i + 1, &Int::one());
            v.add_col_multiple(i, i + 1, &Int::one());
            // Re-run the reduction at position i (the block is now
            // non-diagonal); simplest correct approach: full restart of
            // the reduction for the 2x2 block via euclidean steps.
            loop {
                // d[(i+1, i)] is zero; only d[(i,i)] and d[(i, i+1)]=0,
                // d[(i+1, i)] = dj now? After the col op: column i gets
                // column i+1 added: d[(i,i)] stays di (row i col i+1 is 0)
                // and d[(i+1, i)] becomes dj.
                if d[(i + 1, i)].is_zero() {
                    break;
                }
                let q = d[(i + 1, i)].div_floor(&d[(i, i)]);
                d.add_row_multiple(i + 1, i, &-q.clone());
                u.add_row_multiple(i + 1, i, &-q);
                if d[(i + 1, i)].is_zero() {
                    break;
                }
                d.swap_rows(i, i + 1);
                u.swap_rows(i, i + 1);
            }
            // Now clear the fill-in at (i, i+1).
            loop {
                if d[(i, i + 1)].is_zero() {
                    break;
                }
                let q = d[(i, i + 1)].div_floor(&d[(i, i)]);
                d.add_col_multiple(i + 1, i, &-q.clone());
                v.add_col_multiple(i + 1, i, &-q);
                if d[(i, i + 1)].is_zero() {
                    break;
                }
                d.swap_cols(i, i + 1);
                v.swap_cols(i, i + 1);
            }
            if d[(i, i)].is_negative() {
                d.negate_row(i);
                u.negate_row(i);
            }
            if d[(i + 1, i + 1)].is_negative() {
                d.negate_row(i + 1);
                u.negate_row(i + 1);
            }
            changed = true;
        }
    }

    let rank = (0..dim).take_while(|&i| !d[(i, i)].is_zero()).count();
    SmithNormalForm { u, d, v, rank }
}

/// The integer solution set of `A·x = b`: all solutions are
/// `x = particular + basis · t` for integer parameter vectors `t`.
#[derive(Clone, Debug)]
pub struct DiophantineSolution {
    /// One solution of the system.
    pub particular: Vec<Int>,
    /// Basis of the solution lattice of `A·x = 0`, stored as the columns
    /// of an `n x k` matrix (k = dimension of the kernel).
    pub basis: Matrix,
}

/// Solves `A·x = b` over the integers.
///
/// Returns `None` if the system has no integer solution.
///
/// ```
/// use presburger_arith::{Int, Matrix, smith::solve_diophantine};
///
/// // x + 2y = 5, solutions x = 5 - 2t, y = t
/// let a = Matrix::from_i64(1, 2, &[1, 2]);
/// let sol = solve_diophantine(&a, &[Int::from(5)]).unwrap();
/// assert_eq!(a.mul_vec(&sol.particular), vec![Int::from(5)]);
/// assert_eq!(sol.basis.cols(), 1);
/// assert_eq!(a.mul_vec(&sol.basis.col(0)), vec![Int::zero()]);
/// ```
pub fn solve_diophantine(a: &Matrix, b: &[Int]) -> Option<DiophantineSolution> {
    assert_eq!(b.len(), a.rows(), "right-hand side length mismatch");
    let n = a.cols();
    let snf = smith_normal_form(a);
    let c = snf.u.mul_vec(b);
    let mut y = vec![Int::zero(); n];
    for (i, ci) in c.iter().enumerate() {
        if i < snf.rank {
            let di = &snf.d[(i, i)];
            if !di.divides(ci) {
                return None;
            }
            y[i] = ci / di;
        } else if !ci.is_zero() {
            return None;
        }
    }
    let particular = snf.v.mul_vec(&y);
    let k = n - snf.rank;
    let mut basis = Matrix::zero(n, k);
    for (idx, j) in (snf.rank..n).enumerate() {
        for i in 0..n {
            basis[(i, idx)] = snf.v[(i, j)].clone();
        }
    }
    Some(DiophantineSolution { particular, basis })
}

/// Computes the (column-style) Hermite normal form `H = A * Q` of `a`,
/// with `Q` unimodular and `H` lower triangular with non-negative
/// entries below positive pivots.
///
/// Returns `(h, q)`.
pub fn hermite_normal_form(a: &Matrix) -> (Matrix, Matrix) {
    let rows = a.rows();
    let cols = a.cols();
    let mut h = a.clone();
    let mut q = Matrix::identity(cols);
    let mut pivot_col = 0;
    for r in 0..rows {
        if pivot_col >= cols {
            break;
        }
        // Euclidean reduction across columns pivot_col..cols on row r.
        loop {
            // Find smallest non-zero |entry| in row r at >= pivot_col.
            let mut best: Option<usize> = None;
            for j in pivot_col..cols {
                if !h[(r, j)].is_zero() && best.is_none_or(|bj| h[(r, j)].abs() < h[(r, bj)].abs())
                {
                    best = Some(j);
                }
            }
            let Some(bj) = best else { break };
            h.swap_cols(pivot_col, bj);
            q.swap_cols(pivot_col, bj);
            let mut any = false;
            for j in pivot_col + 1..cols {
                if !h[(r, j)].is_zero() {
                    let k = -h[(r, j)].div_floor(&h[(r, pivot_col)]);
                    h.add_col_multiple(j, pivot_col, &k);
                    q.add_col_multiple(j, pivot_col, &k);
                    if !h[(r, j)].is_zero() {
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }
        if h[(r, pivot_col)].is_zero() {
            continue; // row has no pivot; next row reuses this column
        }
        if h[(r, pivot_col)].is_negative() {
            h.negate_col(pivot_col);
            q.negate_col(pivot_col);
        }
        // Reduce the entries to the left of the pivot into [0, pivot).
        for j in 0..pivot_col {
            let k = -h[(r, j)].div_floor(&h[(r, pivot_col)]);
            if !k.is_zero() {
                h.add_col_multiple(j, pivot_col, &k);
                q.add_col_multiple(j, pivot_col, &k);
            }
        }
        pivot_col += 1;
    }
    (h, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_snf(a: &Matrix) {
        let snf = smith_normal_form(a);
        // U A V == D
        assert_eq!(&(&snf.u * a) * &snf.v, snf.d, "UAV != D for {a:?}");
        // D is diagonal with non-negative entries and divisibility chain.
        for i in 0..snf.d.rows() {
            for j in 0..snf.d.cols() {
                if i != j {
                    assert!(snf.d[(i, j)].is_zero(), "off-diagonal non-zero");
                }
            }
        }
        let dim = snf.d.rows().min(snf.d.cols());
        for i in 0..dim {
            assert!(!snf.d[(i, i)].is_negative());
            if i + 1 < dim && !snf.d[(i, i)].is_zero() && !snf.d[(i + 1, i + 1)].is_zero() {
                assert!(
                    snf.d[(i, i)].divides(&snf.d[(i + 1, i + 1)]),
                    "divisibility chain broken: {:?}",
                    snf.d
                );
            }
            if snf.d[(i, i)].is_zero() && i + 1 < dim {
                assert!(snf.d[(i + 1, i + 1)].is_zero(), "zeros must trail");
            }
        }
    }

    #[test]
    fn snf_small_examples() {
        check_snf(&Matrix::from_i64(2, 2, &[2, 4, 6, 8]));
        check_snf(&Matrix::from_i64(2, 3, &[1, 2, 3, 4, 5, 6]));
        check_snf(&Matrix::from_i64(3, 2, &[0, 0, 0, 0, 0, 0]));
        check_snf(&Matrix::from_i64(1, 1, &[-7]));
        check_snf(&Matrix::from_i64(3, 3, &[2, 0, 0, 0, 3, 0, 0, 0, 5]));
    }

    #[test]
    fn snf_known_diagonal() {
        // classic example: [[2,4,4],[-6,6,12],[10,-4,-16]] has SNF diag(2,6,12)
        let a = Matrix::from_i64(3, 3, &[2, 4, 4, -6, 6, 12, 10, -4, -16]);
        let snf = smith_normal_form(&a);
        assert_eq!(snf.d[(0, 0)], Int::from(2));
        assert_eq!(snf.d[(1, 1)], Int::from(6));
        assert_eq!(snf.d[(2, 2)], Int::from(12));
    }

    #[test]
    fn diophantine_simple() {
        // 6x + 9y = 21 has solutions (2,1)+t(3,-2)
        let a = Matrix::from_i64(1, 2, &[6, 9]);
        let sol = solve_diophantine(&a, &[Int::from(21)]).unwrap();
        assert_eq!(a.mul_vec(&sol.particular), vec![Int::from(21)]);
        assert_eq!(sol.basis.cols(), 1);
        assert_eq!(a.mul_vec(&sol.basis.col(0)), vec![Int::zero()]);
        // The kernel generator must be primitive: (3, -2) up to sign.
        let g = crate::gcd(&sol.basis[(0, 0)], &sol.basis[(1, 0)]);
        assert!(g.is_one());
    }

    #[test]
    fn diophantine_no_solution() {
        // 2x + 4y = 7 has no integer solution
        let a = Matrix::from_i64(1, 2, &[2, 4]);
        assert!(solve_diophantine(&a, &[Int::from(7)]).is_none());
        // inconsistent system: x = 1, x = 2
        let a = Matrix::from_i64(2, 1, &[1, 1]);
        assert!(solve_diophantine(&a, &[Int::from(1), Int::from(2)]).is_none());
    }

    #[test]
    fn diophantine_full_rank_unique() {
        // x + y = 3, x - y = 1 -> unique (2, 1)
        let a = Matrix::from_i64(2, 2, &[1, 1, 1, -1]);
        let sol = solve_diophantine(&a, &[Int::from(3), Int::from(1)]).unwrap();
        assert_eq!(sol.particular, vec![Int::from(2), Int::from(1)]);
        assert_eq!(sol.basis.cols(), 0);
    }

    #[test]
    fn hermite_form_shape() {
        let a = Matrix::from_i64(2, 3, &[4, 7, 2, 0, 0, 3]);
        let (h, q) = hermite_normal_form(&a);
        assert_eq!(&a * &q, h);
        // row 0: pivot at column 0, zeros to its right
        assert!(h[(0, 0)].is_positive());
        assert!(h[(0, 1)].is_zero() && h[(0, 2)].is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn snf_random(entries in proptest::collection::vec(-20i64..20, 6),
                      shape in 0usize..3) {
            let (r, c) = [(2, 3), (3, 2), (1, 6)][shape];
            check_snf(&Matrix::from_i64(r, c, &entries));
        }

        #[test]
        fn diophantine_random_consistent(entries in proptest::collection::vec(-9i64..9, 6),
                                         x in proptest::collection::vec(-9i64..9, 3)) {
            // Build b = A x for a known x, so a solution must exist.
            let a = Matrix::from_i64(2, 3, &entries);
            let xv: Vec<Int> = x.iter().map(|&v| Int::from(v)).collect();
            let b = a.mul_vec(&xv);
            let sol = solve_diophantine(&a, &b).expect("constructed system must be solvable");
            prop_assert_eq!(a.mul_vec(&sol.particular), b.clone());
            for j in 0..sol.basis.cols() {
                let z = a.mul_vec(&sol.basis.col(j));
                prop_assert!(z.iter().all(Int::is_zero));
            }
            // x - particular must lie in the lattice spanned by the basis:
            // verified indirectly by solving D y = U(b) uniquely; here we
            // just re-check that the affine map reproduces b.
        }
    }
}
