//! Exact rational numbers built on [`Int`].

use crate::{gcd, Int};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number, always stored in lowest terms with a
/// positive denominator.
///
/// ```
/// use presburger_arith::{Int, Rat};
///
/// let third = Rat::new(Int::from(2), Int::from(6));
/// assert_eq!(third.numer(), &Int::from(1));
/// assert_eq!(third.denom(), &Int::from(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: Int,
    den: Int, // invariant: den > 0, gcd(num, den) == 1
}

impl Rat {
    /// Creates the rational `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut r = Rat { num, den };
        r.normalize();
        r
    }

    /// The rational `0`.
    pub fn zero() -> Rat {
        Rat {
            num: Int::zero(),
            den: Int::one(),
        }
    }

    /// The rational `1`.
    pub fn one() -> Rat {
        Rat {
            num: Int::one(),
            den: Int::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// Returns `true` if the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is a (possibly negative) integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns `true` if the value is `> 0`.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is `< 0`.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Converts to an [`Int`] if the value is integral.
    pub fn to_int(&self) -> Option<Int> {
        if self.is_integer() {
            Some(self.num.clone())
        } else {
            None
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> Int {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> Int {
        self.num.div_ceil(&self.den)
    }

    /// Approximate `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// `self` raised to the power `exp`.
    pub fn pow(&self, exp: u32) -> Rat {
        Rat {
            num: self.num.pow(exp),
            den: self.den.pow(exp),
        }
    }

    fn normalize(&mut self) {
        if self.den.is_negative() {
            self.num = -self.num.clone();
            self.den = -self.den.clone();
        }
        if self.num.is_zero() {
            self.den = Int::one();
            return;
        }
        let g = gcd(&self.num, &self.den);
        if !g.is_one() {
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::zero()
    }
}

impl From<Int> for Rat {
    fn from(v: Int) -> Rat {
        Rat {
            num: v,
            den: Int::one(),
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from(Int::from(v))
    }
}

fn add_impl(a: &Rat, b: &Rat) -> Rat {
    Rat::new(&(&a.num * &b.den) + &(&b.num * &a.den), &a.den * &b.den)
}

fn mul_impl(a: &Rat, b: &Rat) -> Rat {
    Rat::new(&a.num * &b.num, &a.den * &b.den)
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                $impl_fn(self, rhs)
            }
        }
        impl $trait<Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $impl_fn(&self, &rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                $impl_fn(&self, rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $impl_fn(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_impl);
forward_binop!(Sub, sub, |a: &Rat, b: &Rat| add_impl(a, &-b.clone()));
forward_binop!(Mul, mul, mul_impl);
forward_binop!(Div, div, |a: &Rat, b: &Rat| mul_impl(a, &b.recip()));

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}
impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -self.clone()
    }
}

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = add_impl(self, rhs);
    }
}
impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = add_impl(self, &-rhs.clone());
    }
}
impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = mul_impl(self, rhs);
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::zero(), |a, b| a + b)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 6), r(1, 3));
        assert_eq!(r(-2, -6), r(1, 3));
        assert_eq!(r(2, -6), r(-1, 3));
        assert_eq!(r(0, -5), Rat::zero());
        assert!(r(4, 2).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(Int::one(), Int::zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), Int::from(3));
        assert_eq!(r(7, 2).ceil(), Int::from(4));
        assert_eq!(r(-7, 2).floor(), Int::from(-4));
        assert_eq!(r(-7, 2).ceil(), Int::from(-3));
        assert_eq!(r(6, 3).floor(), Int::from(2));
        assert_eq!(r(6, 3).ceil(), Int::from(2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 4) == r(1, 2));
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(-5, 10).to_string(), "-1/2");
    }

    proptest! {
        #[test]
        fn field_axioms(an in -100i64..100, ad in 1i64..50,
                        bn in -100i64..100, bd in 1i64..50,
                        cn in -100i64..100, cd in 1i64..50) {
            let a = r(an, ad);
            let b = r(bn, bd);
            let c = r(cn, cd);
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            if !a.is_zero() {
                prop_assert_eq!(&a * &a.recip(), Rat::one());
            }
        }

        #[test]
        fn floor_ceil_consistent(n in -10_000i64..10_000, d in 1i64..500) {
            let x = r(n, d);
            let f = x.floor();
            let c = x.ceil();
            prop_assert!(Rat::from(f.clone()) <= x);
            prop_assert!(x <= Rat::from(c.clone()));
            prop_assert!(&c - &f <= Int::one());
        }
    }
}
