//! Exact arithmetic substrate for the `presburger` workspace.
//!
//! The Omega test and the symbolic summation engine built on top of it
//! require arithmetic that never overflows and never rounds:
//!
//! * [`Int`] — arbitrary-precision signed integers with an `i128`
//!   fast path (Fourier–Motzkin products and Smith-normal-form pivots can
//!   grow coefficients well past machine width);
//! * [`Rat`] — exact rationals (Bernoulli numbers and Faulhaber
//!   coefficients are not integers);
//! * [`Matrix`] — dense integer matrices with unimodular
//!   row/column operations;
//! * [`smith`] — Hermite and Smith normal forms, plus a general solver
//!   for systems of linear Diophantine equations (used by the paper's
//!   §4.5.2 "projected sums").
//!
//! The crate is dependency-free by design: the reproduction target
//! predates the mature bignum ecosystem, and building the substrate from
//! scratch keeps the workspace self-contained (see `DESIGN.md` §2).
//!
//! # Example
//!
//! ```
//! use presburger_arith::{Int, Rat};
//!
//! let big = Int::from(1_000_000_007i64).pow(5);
//! assert_eq!(&big % &Int::from(1_000_000_007i64), Int::zero());
//!
//! let half = Rat::new(Int::from(1), Int::from(2));
//! assert_eq!(half.clone() + half, Rat::from(Int::one()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod matrix;
mod rat;
pub mod row;
pub mod smith;

pub use int::Int;
pub use matrix::Matrix;
pub use rat::Rat;
pub use row::Row;

/// Greatest common divisor of two [`Int`]s; always non-negative.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// ```
/// use presburger_arith::{gcd, Int};
/// assert_eq!(gcd(&Int::from(12), &Int::from(-18)), Int::from(6));
/// ```
pub fn gcd(a: &Int, b: &Int) -> Int {
    let mut a = a.abs();
    let mut b = b.abs();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two [`Int`]s; always non-negative.
///
/// `lcm(0, x)` is `0`.
///
/// ```
/// use presburger_arith::{lcm, Int};
/// assert_eq!(lcm(&Int::from(4), &Int::from(6)), Int::from(12));
/// ```
pub fn lcm(a: &Int, b: &Int) -> Int {
    if a.is_zero() || b.is_zero() {
        return Int::zero();
    }
    let g = gcd(a, b);
    (&(a / &g) * b).abs()
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y == g == gcd(a, b)` and `g >= 0`.
///
/// ```
/// use presburger_arith::{egcd, Int};
/// let (g, x, y) = egcd(&Int::from(240), &Int::from(46));
/// assert_eq!(g, Int::from(2));
/// assert_eq!(&Int::from(240) * &x + &Int::from(46) * &y, g);
/// ```
pub fn egcd(a: &Int, b: &Int) -> (Int, Int, Int) {
    let (mut old_r, mut r) = (a.clone(), b.clone());
    let (mut old_s, mut s) = (Int::one(), Int::zero());
    let (mut old_t, mut t) = (Int::zero(), Int::one());
    while !r.is_zero() {
        let q = old_r.div_floor(&r);
        let tmp = &old_r - &(&q * &r);
        old_r = std::mem::replace(&mut r, tmp);
        let tmp = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, tmp);
        let tmp = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, tmp);
    }
    if old_r.is_negative() {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// Symmetric ("balanced") modulus used by the Omega test's equality
/// elimination: the representative of `a mod m` in `(-m/2, m/2]`.
///
/// ```
/// use presburger_arith::{mod_balanced, Int};
/// assert_eq!(mod_balanced(&Int::from(7), &Int::from(4)), Int::from(-1));
/// assert_eq!(mod_balanced(&Int::from(6), &Int::from(4)), Int::from(2));
/// ```
///
/// # Panics
///
/// Panics if `m <= 0`.
pub fn mod_balanced(a: &Int, m: &Int) -> Int {
    assert!(m.is_positive(), "modulus must be positive");
    let r = a.rem_euclid(m); // in [0, m)
    let half = m.div_floor(&Int::from(2));
    if r > half {
        &r - m
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(&Int::zero(), &Int::zero()), Int::zero());
        assert_eq!(gcd(&Int::zero(), &Int::from(-5)), Int::from(5));
        assert_eq!(gcd(&Int::from(21), &Int::from(14)), Int::from(7));
        assert_eq!(lcm(&Int::zero(), &Int::from(9)), Int::zero());
        assert_eq!(lcm(&Int::from(-4), &Int::from(10)), Int::from(20));
    }

    #[test]
    fn egcd_bezout() {
        for (a, b) in [(240i64, 46), (-17, 5), (0, 7), (12, 0), (-9, -24)] {
            let (a, b) = (Int::from(a), Int::from(b));
            let (g, x, y) = egcd(&a, &b);
            assert_eq!(g, gcd(&a, &b));
            assert_eq!(&a * &x + &b * &y, g);
        }
    }

    #[test]
    fn balanced_mod_range() {
        let m = Int::from(5);
        for a in -12i64..=12 {
            let r = mod_balanced(&Int::from(a), &m);
            assert!(r > Int::from(-3) && r <= Int::from(2), "a={a} r={r}");
            assert_eq!((&Int::from(a) - &r).rem_euclid(&m), Int::zero());
        }
        let m = Int::from(4);
        for a in -9i64..=9 {
            let r = mod_balanced(&Int::from(a), &m);
            assert!(r > Int::from(-2) && r <= Int::from(2), "a={a} r={r}");
        }
    }
}
