//! Dense integer matrices with the elementary (unimodular) row and
//! column operations needed for Hermite/Smith normal form computation.

use crate::Int;
use std::fmt;
use std::ops::Mul;

/// A dense matrix of [`Int`] values, stored row-major.
///
/// ```
/// use presburger_arith::{Int, Matrix};
///
/// let m = Matrix::from_i64(2, 2, &[1, 2, 3, 4]);
/// let id = Matrix::identity(2);
/// assert_eq!(&m * &id, m);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Int>,
}

impl Matrix {
    /// Creates a `rows x cols` zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![Int::zero(); rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Int::one();
        }
        m
    }

    /// Creates a matrix from row-major entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != rows * cols`.
    pub fn from_entries(rows: usize, cols: usize, entries: Vec<Int>) -> Matrix {
        assert_eq!(entries.len(), rows * cols, "entry count mismatch");
        Matrix {
            rows,
            cols,
            data: entries,
        }
    }

    /// Convenience constructor from `i64` entries (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != rows * cols`.
    pub fn from_i64(rows: usize, cols: usize, entries: &[i64]) -> Matrix {
        Matrix::from_entries(rows, cols, entries.iter().map(|&v| Int::from(v)).collect())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(Int::is_zero)
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zero(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)].clone();
            }
        }
        t
    }

    /// Swap rows `i` and `j`.
    pub fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(i * self.cols + c, j * self.cols + c);
        }
    }

    /// Swap columns `i` and `j`.
    pub fn swap_cols(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + i, r * self.cols + j);
        }
    }

    /// Row operation `row[i] += k * row[j]` (unimodular for any integer `k`).
    pub fn add_row_multiple(&mut self, i: usize, j: usize, k: &Int) {
        assert_ne!(i, j, "row indices must differ");
        for c in 0..self.cols {
            let add = &self[(j, c)] * k;
            self[(i, c)] += &add;
        }
    }

    /// Column operation `col[i] += k * col[j]`.
    pub fn add_col_multiple(&mut self, i: usize, j: usize, k: &Int) {
        assert_ne!(i, j, "column indices must differ");
        for r in 0..self.rows {
            let add = &self[(r, j)] * k;
            self[(r, i)] += &add;
        }
    }

    /// Negate row `i`.
    pub fn negate_row(&mut self, i: usize) {
        for c in 0..self.cols {
            self[(i, c)] = -self[(i, c)].clone();
        }
    }

    /// Negate column `i`.
    pub fn negate_col(&mut self, i: usize) {
        for r in 0..self.rows {
            self[(r, i)] = -self[(r, i)].clone();
        }
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Int]) -> Vec<Int> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Int::zero();
                for j in 0..self.cols {
                    acc += &(&self[(i, j)] * &v[j]);
                }
                acc
            })
            .collect()
    }

    /// The determinant, by Bareiss fraction-free elimination (every
    /// intermediate division is exact, so entries stay integral and
    /// polynomially bounded).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> Int {
        assert_eq!(self.rows, self.cols, "determinant of a non-square matrix");
        let n = self.rows;
        if n == 0 {
            return Int::one();
        }
        let mut m = self.clone();
        let mut sign = 1i32;
        let mut prev = Int::one();
        for k in 0..n - 1 {
            if m[(k, k)].is_zero() {
                let Some(p) = (k + 1..n).find(|&i| !m[(i, k)].is_zero()) else {
                    return Int::zero();
                };
                m.swap_rows(k, p);
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = &(&m[(k, k)] * &m[(i, j)]) - &(&m[(i, k)] * &m[(k, j)]);
                    let (q, r) = num.div_rem(&prev);
                    debug_assert!(r.is_zero(), "Bareiss division must be exact");
                    m[(i, j)] = q;
                }
                m[(i, k)] = Int::zero();
            }
            prev = m[(k, k)].clone();
        }
        let d = m[(n - 1, n - 1)].clone();
        if sign < 0 {
            -d
        } else {
            d
        }
    }

    /// Appends a canonical byte encoding of the matrix (shape plus
    /// row-major entries) to `out`, for memo-table keys. Injective:
    /// equal bytes iff equal shape and entries.
    pub fn push_key_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        for e in &self.data {
            e.push_key_bytes(out);
        }
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec<Int> {
        (0..self.rows).map(|i| self[(i, j)].clone()).collect()
    }

    /// Extracts row `i` as a vector.
    pub fn row(&self, i: usize) -> Vec<Int> {
        (0..self.cols).map(|j| self[(i, j)].clone()).collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Int;
    fn index(&self, (i, j): (usize, usize)) -> &Int {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Int {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = &self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let add = a * &rhs[(k, j)];
                    out[(i, j)] += &add;
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>6} ", self[(i, j)].to_string())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let m = Matrix::from_i64(2, 3, &[1, -2, 3, 4, 5, -6]);
        assert_eq!(&Matrix::identity(2) * &m, m);
        assert_eq!(&m * &Matrix::identity(3), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_i64(2, 3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], Int::from(6));
    }

    #[test]
    fn row_col_ops_preserve_determinant_magnitude() {
        // For a 2x2 matrix, |det| is invariant under the unimodular ops.
        let det = |m: &Matrix| &(&m[(0, 0)] * &m[(1, 1)]) - &(&m[(0, 1)] * &m[(1, 0)]);
        let mut m = Matrix::from_i64(2, 2, &[3, 5, 7, 2]);
        let d0 = det(&m).abs();
        m.add_row_multiple(0, 1, &Int::from(-4));
        m.swap_cols(0, 1);
        m.negate_row(1);
        m.add_col_multiple(1, 0, &Int::from(9));
        assert_eq!(det(&m).abs(), d0);
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let m = Matrix::from_i64(2, 3, &[1, 2, 3, 4, 5, 6]);
        let v = vec![Int::from(1), Int::from(0), Int::from(-1)];
        assert_eq!(m.mul_vec(&v), vec![Int::from(-2), Int::from(-2)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_checks_dims() {
        let m = Matrix::zero(2, 3);
        let _ = m.mul_vec(&[Int::one()]);
    }

    #[test]
    fn row_col_extraction() {
        let m = Matrix::from_i64(2, 3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m.row(1), vec![Int::from(4), Int::from(5), Int::from(6)]);
        assert_eq!(m.col(2), vec![Int::from(3), Int::from(6)]);
    }
}
