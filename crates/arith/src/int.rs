//! Arbitrary-precision signed integers.
//!
//! [`Int`] keeps values that fit in an `i128` inline (the overwhelmingly
//! common case for constraint coefficients) and transparently spills to a
//! sign-magnitude little-endian `u64`-limb representation when an
//! operation overflows. The canonical-form invariant — *small iff the
//! value fits in `i128`* — makes structural equality and hashing agree
//! with numeric equality.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// ```
/// use presburger_arith::Int;
///
/// let a = Int::from(10).pow(40);
/// let b = &a * &a;
/// assert_eq!(b.to_string().len(), 81);
/// assert_eq!(&b / &a, a);
/// ```
#[derive(Clone)]
pub struct Int(Repr);

#[derive(Clone)]
enum Repr {
    Small(i128),
    /// Magnitude does not fit in `i128`. Invariants: limbs are
    /// little-endian, no trailing zero limb, magnitude > i128::MAX.
    Big {
        negative: bool,
        limbs: Vec<u64>,
    },
}

impl Int {
    /// The value `0`.
    pub fn zero() -> Int {
        Int(Repr::Small(0))
    }

    /// The value `1`.
    pub fn one() -> Int {
        Int(Repr::Small(1))
    }

    /// Returns `true` if `self == 0`.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// Returns `true` if `self == 1`.
    pub fn is_one(&self) -> bool {
        matches!(self.0, Repr::Small(1))
    }

    /// Returns `true` if `self > 0`.
    pub fn is_positive(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => *v > 0,
            Repr::Big { negative, .. } => !negative,
        }
    }

    /// Returns `true` if `self < 0`.
    pub fn is_negative(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => *v < 0,
            Repr::Big { negative, .. } => *negative,
        }
    }

    /// Sign of the value: `-1`, `0`, or `1`.
    pub fn signum(&self) -> i32 {
        match &self.0 {
            Repr::Small(v) => match v.cmp(&0) {
                Ordering::Less => -1,
                Ordering::Equal => 0,
                Ordering::Greater => 1,
            },
            Repr::Big { negative, .. } => {
                if *negative {
                    -1
                } else {
                    1
                }
            }
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        if self.is_negative() {
            -self.clone()
        } else {
            self.clone()
        }
    }

    /// Returns the value as an `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        match &self.0 {
            Repr::Small(v) => i64::try_from(*v).ok(),
            Repr::Big { .. } => None,
        }
    }

    /// Returns the value as an `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.0 {
            Repr::Small(v) => Some(*v),
            Repr::Big { .. } => None,
        }
    }

    /// Returns the value as an `f64` (approximate for huge values).
    pub fn to_f64(&self) -> f64 {
        match &self.0 {
            Repr::Small(v) => *v as f64,
            Repr::Big { negative, limbs } => {
                let mut x = 0.0f64;
                for &l in limbs.iter().rev() {
                    x = x * 1.8446744073709552e19 + l as f64;
                }
                if *negative {
                    -x
                } else {
                    x
                }
            }
        }
    }

    /// `self` raised to the power `exp`.
    ///
    /// ```
    /// use presburger_arith::Int;
    /// assert_eq!(Int::from(3).pow(4), Int::from(81));
    /// assert_eq!(Int::from(7).pow(0), Int::one());
    /// ```
    pub fn pow(&self, exp: u32) -> Int {
        let mut result = Int::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        result
    }

    /// Floor division: rounds the quotient toward negative infinity.
    ///
    /// ```
    /// use presburger_arith::Int;
    /// assert_eq!(Int::from(-7).div_floor(&Int::from(2)), Int::from(-4));
    /// assert_eq!(Int::from(7).div_floor(&Int::from(2)), Int::from(3));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_floor(&self, d: &Int) -> Int {
        let (q, r) = self.div_rem(d);
        if !r.is_zero() && (r.is_negative() != d.is_negative()) {
            q - Int::one()
        } else {
            q
        }
    }

    /// Ceiling division: rounds the quotient toward positive infinity.
    ///
    /// ```
    /// use presburger_arith::Int;
    /// assert_eq!(Int::from(7).div_ceil(&Int::from(2)), Int::from(4));
    /// assert_eq!(Int::from(-7).div_ceil(&Int::from(2)), Int::from(-3));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_ceil(&self, d: &Int) -> Int {
        let (q, r) = self.div_rem(d);
        if !r.is_zero() && (r.is_negative() == d.is_negative()) {
            q + Int::one()
        } else {
            q
        }
    }

    /// Euclidean remainder: always in `[0, |d|)`.
    ///
    /// ```
    /// use presburger_arith::Int;
    /// assert_eq!(Int::from(-7).rem_euclid(&Int::from(3)), Int::from(2));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn rem_euclid(&self, d: &Int) -> Int {
        let r = self % d;
        if r.is_negative() {
            &r + &d.abs()
        } else {
            r
        }
    }

    /// Truncating division and remainder (remainder has the sign of
    /// `self`, like Rust's `/` and `%` on primitives).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &Int) -> (Int, Int) {
        assert!(!d.is_zero(), "division by zero");
        match (&self.0, &d.0) {
            (Repr::Small(a), Repr::Small(b)) => {
                // i128::MIN / -1 overflows; promote that one case.
                if let (Some(q), Some(r)) = (a.checked_div(*b), a.checked_rem(*b)) {
                    (Int::from(q), Int::from(r))
                } else {
                    let (q, r) = limbs_divrem(&to_limbs(*a), &to_limbs(*b));
                    (
                        Int::from_sign_limbs(a.is_negative() != b.is_negative(), q),
                        Int::from_sign_limbs(a.is_negative(), r),
                    )
                }
            }
            _ => {
                let (an, al) = self.sign_limbs();
                let (bn, bl) = d.sign_limbs();
                let (q, r) = limbs_divrem(&al, &bl);
                (
                    Int::from_sign_limbs(an != bn, q),
                    Int::from_sign_limbs(an, r),
                )
            }
        }
    }

    /// Returns `true` if `self` divides `other` evenly.
    ///
    /// `0` divides only `0`.
    pub fn divides(&self, other: &Int) -> bool {
        if self.is_zero() {
            other.is_zero()
        } else {
            (other % self).is_zero()
        }
    }

    /// Appends a canonical, self-delimiting byte encoding of the value
    /// to `out`, for use in memo-table and cache keys.
    ///
    /// The encoding is injective: structurally equal values (and only
    /// those) produce equal bytes, at any point in any process — it
    /// depends on nothing but the numeric value. Small magnitudes use
    /// compact tiers (most constraint coefficients fit in one byte).
    pub fn push_key_bytes(&self, out: &mut Vec<u8>) {
        match &self.0 {
            Repr::Small(v) => {
                if let Ok(b) = i8::try_from(*v) {
                    out.push(1);
                    out.push(b as u8);
                } else if let Ok(w) = i32::try_from(*v) {
                    out.push(2);
                    out.extend_from_slice(&w.to_le_bytes());
                } else {
                    out.push(3);
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Repr::Big { negative, limbs } => {
                // Canonical form: Big iff out of i128 range, no trailing
                // zero limb — so the limb vector is unique per value.
                out.push(if *negative { 5 } else { 4 });
                out.extend_from_slice(&(limbs.len() as u32).to_le_bytes());
                for l in limbs {
                    out.extend_from_slice(&l.to_le_bytes());
                }
            }
        }
    }

    fn sign_limbs(&self) -> (bool, Vec<u64>) {
        match &self.0 {
            Repr::Small(v) => (*v < 0, to_limbs(*v)),
            Repr::Big { negative, limbs } => (*negative, limbs.clone()),
        }
    }

    fn from_sign_limbs(negative: bool, mut limbs: Vec<u64>) -> Int {
        trim(&mut limbs);
        if limbs.is_empty() {
            return Int::zero();
        }
        // Demote to Small when the magnitude fits in i128.
        if limbs.len() <= 2 {
            let mag = limbs[0] as u128 | ((limbs.get(1).copied().unwrap_or(0) as u128) << 64);
            if negative {
                if mag <= i128::MIN.unsigned_abs() {
                    return Int(Repr::Small((mag as i128).wrapping_neg()));
                }
            } else if mag <= i128::MAX as u128 {
                return Int(Repr::Small(mag as i128));
            }
        }
        presburger_trace::bump(presburger_trace::Counter::IntPromotions);
        let bits = (limbs.len() as u64 - 1) * 64
            + (64 - limbs.last().expect("nonempty").leading_zeros() as u64);
        presburger_trace::record_max(presburger_trace::Counter::MaxCoeffBits, bits);
        Int(Repr::Big { negative, limbs })
    }
}

fn to_limbs(v: i128) -> Vec<u64> {
    let mag = v.unsigned_abs();
    let mut l = vec![mag as u64, (mag >> 64) as u64];
    trim(&mut l);
    l
}

fn trim(v: &mut Vec<u64>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

fn limbs_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    Ordering::Equal
}

#[allow(clippy::needless_range_loop)] // index math pairs limbs across operands
fn limbs_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = long[i] as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry as u128;
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`, requiring `a >= b`.
#[allow(clippy::needless_range_loop)] // index math pairs limbs across operands
fn limbs_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(limbs_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, o1) = a[i].overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (o1 || o2) as u64;
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

fn limbs_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

fn limbs_shl(a: &[u64], bits: u32) -> Vec<u64> {
    if a.is_empty() {
        return vec![];
    }
    let words = (bits / 64) as usize;
    let rem = bits % 64;
    let mut out = vec![0u64; words];
    if rem == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u64;
        for &x in a {
            out.push((x << rem) | carry);
            carry = x >> (64 - rem);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    trim(&mut out);
    out
}

fn limbs_shr(a: &[u64], bits: u32) -> Vec<u64> {
    let words = (bits / 64) as usize;
    let rem = bits % 64;
    if words >= a.len() {
        return vec![];
    }
    let mut out = Vec::with_capacity(a.len() - words);
    if rem == 0 {
        out.extend_from_slice(&a[words..]);
    } else {
        for i in words..a.len() {
            let lo = a[i] >> rem;
            let hi = if i + 1 < a.len() {
                a[i + 1] << (64 - rem)
            } else {
                0
            };
            out.push(lo | hi);
        }
    }
    trim(&mut out);
    out
}

/// Knuth Algorithm D long division on magnitudes. Returns `(q, r)`.
fn limbs_divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero magnitude");
    if limbs_cmp(a, b) == Ordering::Less {
        return (vec![], a.to_vec());
    }
    if b.len() == 1 {
        // Fast path: single-limb divisor.
        let d = b[0] as u128;
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        trim(&mut q);
        let mut r = vec![rem as u64];
        trim(&mut r);
        return (q, r);
    }
    // Normalize: shift so the top limb of the divisor has its high bit set.
    let shift = b.last().unwrap().leading_zeros();
    let bn = limbs_shl(b, shift);
    let mut an = limbs_shl(a, shift);
    an.push(0); // extra high limb for the algorithm
    let n = bn.len();
    let m = an.len() - n - 1;
    let mut q = vec![0u64; m + 1];
    let btop = bn[n - 1] as u128;
    let bsecond = bn[n - 2] as u128;
    for j in (0..=m).rev() {
        // Estimate qhat from the top two limbs.
        let top = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
        let mut qhat = top / btop;
        let mut rhat = top % btop;
        while qhat >> 64 != 0 || qhat * bsecond > ((rhat << 64) | an[j + n - 2] as u128) {
            qhat -= 1;
            rhat += btop;
            if rhat >> 64 != 0 {
                break;
            }
        }
        // Multiply-subtract qhat * bn from an[j .. j+n].
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * bn[i] as u128 + carry;
            carry = p >> 64;
            let sub = (an[j + i] as i128) - (p as u64 as i128) - borrow;
            an[j + i] = sub as u64;
            borrow = if sub < 0 { 1 } else { 0 };
        }
        let sub = (an[j + n] as i128) - (carry as i128) - borrow;
        an[j + n] = sub as u64;
        if sub < 0 {
            // qhat was one too large: add back.
            qhat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = an[j + i] as u128 + bn[i] as u128 + carry;
                an[j + i] = s as u64;
                carry = s >> 64;
            }
            an[j + n] = an[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat as u64;
    }
    trim(&mut q);
    let mut r = an[..n].to_vec();
    trim(&mut r);
    (q, limbs_shr(&r, shift))
}

// ---------------------------------------------------------------------
// trait impls

impl Default for Int {
    fn default() -> Int {
        Int::zero()
    }
}

macro_rules! impl_from_prim {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                Int(Repr::Small(v as i128))
            }
        }
    )*};
}
impl_from_prim!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

impl PartialEq for Int {
    fn eq(&self, other: &Int) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Int {}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Int) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Int) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // A Big value is out of i128 range by invariant.
            (Repr::Small(_), Repr::Big { negative, .. }) => {
                if *negative {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Repr::Big { negative, .. }, Repr::Small(_)) => {
                if *negative {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (
                Repr::Big {
                    negative: an,
                    limbs: al,
                },
                Repr::Big {
                    negative: bn,
                    limbs: bl,
                },
            ) => match (an, bn) {
                (false, true) => Ordering::Greater,
                (true, false) => Ordering::Less,
                (false, false) => limbs_cmp(al, bl),
                (true, true) => limbs_cmp(bl, al),
            },
        }
    }
}

impl Hash for Int {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Canonical form guarantees Small/Big never collide numerically.
        match &self.0 {
            Repr::Small(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Repr::Big { negative, limbs } => {
                1u8.hash(state);
                negative.hash(state);
                limbs.hash(state);
            }
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        match self.0 {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => Int(Repr::Small(n)),
                None => Int::from_sign_limbs(false, to_limbs(v)),
            },
            Repr::Big { negative, limbs } => Int::from_sign_limbs(!negative, limbs),
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

fn add_impl(a: &Int, b: &Int) -> Int {
    if let (Repr::Small(x), Repr::Small(y)) = (&a.0, &b.0) {
        if let Some(s) = x.checked_add(*y) {
            return Int(Repr::Small(s));
        }
    }
    let (an, al) = a.sign_limbs();
    let (bn, bl) = b.sign_limbs();
    if an == bn {
        Int::from_sign_limbs(an, limbs_add(&al, &bl))
    } else {
        match limbs_cmp(&al, &bl) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::from_sign_limbs(an, limbs_sub(&al, &bl)),
            Ordering::Less => Int::from_sign_limbs(bn, limbs_sub(&bl, &al)),
        }
    }
}

fn mul_impl(a: &Int, b: &Int) -> Int {
    if let (Repr::Small(x), Repr::Small(y)) = (&a.0, &b.0) {
        if let Some(p) = x.checked_mul(*y) {
            return Int(Repr::Small(p));
        }
    }
    let (an, al) = a.sign_limbs();
    let (bn, bl) = b.sign_limbs();
    Int::from_sign_limbs(an != bn, limbs_mul(&al, &bl))
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                $impl_fn(self, rhs)
            }
        }
        impl $trait<Int> for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $impl_fn(&self, &rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                $impl_fn(&self, rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $impl_fn(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_impl);
forward_binop!(Sub, sub, |a: &Int, b: &Int| add_impl(a, &-b.clone()));
forward_binop!(Mul, mul, mul_impl);
forward_binop!(Div, div, |a: &Int, b: &Int| a.div_rem(b).0);
forward_binop!(Rem, rem, |a: &Int, b: &Int| a.div_rem(b).1);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = add_impl(self, rhs);
    }
}
impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = add_impl(self, &-rhs.clone());
    }
}
impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = mul_impl(self, rhs);
    }
}

impl Sum for Int {
    fn sum<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| a + b)
    }
}
impl Product for Int {
    fn product<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::one(), |a, b| a * b)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Repr::Small(v) => write!(f, "{v}"),
            Repr::Big { negative, limbs } => {
                // Repeated division by 10^19 (largest power of 10 in u64).
                const CHUNK: u64 = 10_000_000_000_000_000_000;
                let mut digits: Vec<String> = Vec::new();
                let mut cur = limbs.clone();
                while !cur.is_empty() {
                    let (q, r) = limbs_divrem(&cur, &[CHUNK]);
                    digits.push(format!("{}", r.first().copied().unwrap_or(0)));
                    cur = q;
                }
                let mut s = String::new();
                if *negative {
                    s.push('-');
                }
                s.push_str(&digits.pop().unwrap());
                while let Some(d) = digits.pop() {
                    s.push_str(&format!("{d:0>19}"));
                }
                f.write_str(&s)
            }
        }
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing an [`Int`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError;

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal")
    }
}
impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Int, ParseIntError> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseIntError);
        }
        let ten = Int::from(10);
        let mut acc = Int::zero();
        for b in body.bytes() {
            acc = &acc * &ten + Int::from(b - b'0');
        }
        Ok(if neg { -acc } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(s: &str) -> Int {
        s.parse().unwrap()
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(Int::from(2) + Int::from(3), Int::from(5));
        assert_eq!(Int::from(2) - Int::from(3), Int::from(-1));
        assert_eq!(Int::from(-4) * Int::from(6), Int::from(-24));
        assert_eq!(Int::from(17) / Int::from(5), Int::from(3));
        assert_eq!(Int::from(17) % Int::from(5), Int::from(2));
        assert_eq!(Int::from(-17) % Int::from(5), Int::from(-2));
    }

    #[test]
    fn promotion_on_overflow() {
        let max = Int::from(i128::MAX);
        let one = Int::one();
        let sum = &max + &one;
        assert_eq!(sum.to_string(), "170141183460469231731687303715884105728");
        assert_eq!(&sum - &one, max);
        assert!(sum.to_i128().is_none());
    }

    #[test]
    fn i128_min_edge_cases() {
        let min = Int::from(i128::MIN);
        assert_eq!(
            (-min.clone()).to_string(),
            "170141183460469231731687303715884105728"
        );
        let (q, r) = min.div_rem(&Int::from(-1));
        assert_eq!(q.to_string(), "170141183460469231731687303715884105728");
        assert!(r.is_zero());
        assert_eq!(
            min.abs().to_string(),
            "170141183460469231731687303715884105728"
        );
    }

    #[test]
    fn big_mul_div_roundtrip() {
        let a = big("123456789012345678901234567890123456789");
        let b = big("987654321098765432109876543210");
        let p = &a * &b;
        assert_eq!(&p / &a, b);
        assert_eq!(&p / &b, a);
        assert!((&p % &a).is_zero());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "0",
            "-1",
            "170141183460469231731687303715884105728",
            "-999999999999999999999999999999999999999999",
            "10000000000000000000000000000000000000000000000001",
        ] {
            assert_eq!(big(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Int>().is_err());
        assert!("-".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
        assert!("+5".parse::<Int>().unwrap() == Int::from(5));
    }

    #[test]
    fn floor_ceil_division() {
        assert_eq!(Int::from(-7).div_floor(&Int::from(2)), Int::from(-4));
        assert_eq!(Int::from(-7).div_ceil(&Int::from(2)), Int::from(-3));
        assert_eq!(Int::from(7).div_floor(&Int::from(-2)), Int::from(-4));
        assert_eq!(Int::from(7).div_ceil(&Int::from(-2)), Int::from(-3));
    }

    #[test]
    fn ordering_across_reprs() {
        let huge = big("170141183460469231731687303715884105729");
        let small = Int::from(5);
        assert!(huge > small);
        assert!(-huge.clone() < small);
        assert!(-huge.clone() < -small.clone());
        assert!(huge == huge.clone());
    }

    #[test]
    fn pow_and_to_f64() {
        assert_eq!(
            Int::from(2).pow(100).to_string(),
            "1267650600228229401496703205376"
        );
        let x = Int::from(2).pow(100).to_f64();
        assert!((x - 1.2676506002282294e30).abs() / x < 1e-12);
    }

    #[test]
    fn key_bytes_tiers() {
        let enc = |v: &Int| {
            let mut b = Vec::new();
            v.push_key_bytes(&mut b);
            b
        };
        assert_eq!(enc(&Int::from(0)).len(), 2, "i8 tier");
        assert_eq!(enc(&Int::from(-128)).len(), 2);
        assert_eq!(enc(&Int::from(128)).len(), 5, "i32 tier");
        assert_eq!(enc(&Int::from(1i64 << 40)).len(), 17, "i128 tier");
        assert!(enc(&big("170141183460469231731687303715884105728")).len() > 17);
    }

    proptest! {
        #[test]
        fn key_bytes_injective(a in any::<i64>(), b in any::<i64>(), p in 0u32..5) {
            // Mix in big values via pow to cross the representation tiers.
            let x = Int::from(a).pow(p.max(1));
            let y = Int::from(b).pow(p.max(1));
            let mut bx = Vec::new();
            let mut by = Vec::new();
            x.push_key_bytes(&mut bx);
            y.push_key_bytes(&mut by);
            prop_assert_eq!(bx == by, x == y, "equal bytes iff equal values");
        }

        #[test]
        fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let r = Int::from(a) + Int::from(b);
            prop_assert_eq!(r, Int::from(a as i128 + b as i128));
        }

        #[test]
        fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let r = Int::from(a) * Int::from(b);
            prop_assert_eq!(r, Int::from(a as i128 * b as i128));
        }

        #[test]
        fn divrem_invariant_small(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |b| *b != 0)) {
            let (q, r) = Int::from(a).div_rem(&Int::from(b));
            prop_assert_eq!(&q * &Int::from(b) + &r, Int::from(a));
            prop_assert!(r.abs() < Int::from(b).abs());
        }

        #[test]
        fn divrem_invariant_big(al in proptest::collection::vec(any::<u64>(), 1..6),
                                bl in proptest::collection::vec(any::<u64>(), 1..4),
                                an in any::<bool>(), bn in any::<bool>()) {
            let a = Int::from_sign_limbs(an, al);
            let b = Int::from_sign_limbs(bn, bl);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(&q * &b + &r, a.clone());
            prop_assert!(r.abs() < b.abs());
            // remainder sign matches dividend (truncating division)
            prop_assert!(r.is_zero() || (r.is_negative() == a.is_negative()));
        }

        #[test]
        fn string_roundtrip(al in proptest::collection::vec(any::<u64>(), 1..5), neg in any::<bool>()) {
            let a = Int::from_sign_limbs(neg, al);
            let s = a.to_string();
            prop_assert_eq!(s.parse::<Int>().unwrap(), a);
        }

        #[test]
        fn ord_consistent_with_sub(al in proptest::collection::vec(any::<u64>(), 1..4),
                                   bl in proptest::collection::vec(any::<u64>(), 1..4),
                                   an in any::<bool>(), bn in any::<bool>()) {
            let a = Int::from_sign_limbs(an, al);
            let b = Int::from_sign_limbs(bn, bl);
            let d = &a - &b;
            prop_assert_eq!(a.cmp(&b), d.cmp(&Int::zero()));
        }

        #[test]
        fn floor_ceil_match_f64_small(a in -10_000i64..10_000, b in (1i64..200)) {
            let f = Int::from(a).div_floor(&Int::from(b));
            prop_assert_eq!(f, Int::from((a as f64 / b as f64).floor() as i64));
            let c = Int::from(a).div_ceil(&Int::from(b));
            prop_assert_eq!(c, Int::from((a as f64 / b as f64).ceil() as i64));
        }
    }
}
