//! A sorted association row with inline small-row storage.
//!
//! [`Row`] is the coefficient-map representation behind affine
//! expressions: an ordered map from a key (a variable id) to an [`Int`]
//! coefficient. It mirrors the [`Int`] small-value fast path one level
//! up: rows with at most [`INLINE`] entries — the overwhelmingly common
//! case for constraint coefficients — live inline in the struct with no
//! heap allocation for the spine, and spill to a sorted `Vec` only when
//! they grow past that.
//!
//! The observable semantics are exactly those of a
//! `BTreeMap<K, Int>`: entries iterate in ascending key order, and
//! `Eq`/`Ord`/`Hash` are defined over that ordered entry sequence — so
//! swapping a `BTreeMap` field for a `Row` changes no derived
//! comparison, no canonical sort, and no rendered output.

use crate::Int;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Rows with at most this many entries are stored inline.
pub const INLINE: usize = 4;

/// A sorted `K -> Int` map with inline storage for small rows.
#[derive(Clone)]
pub struct Row<K> {
    store: Store<K>,
}

#[derive(Clone)]
enum Store<K> {
    /// Sorted by key; the first `len` slots are `Some`.
    Inline {
        len: u8,
        slots: [Option<(K, Int)>; INLINE],
    },
    /// Sorted by key. Entered when a row outgrows the inline slots;
    /// never demoted (rows that grew once tend to grow again).
    Spilled(Vec<(K, Int)>),
}

impl<K: Ord + Clone> Row<K> {
    /// Creates an empty row.
    pub fn new() -> Row<K> {
        Row {
            store: Store::Inline {
                len: 0,
                slots: [None, None, None, None],
            },
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Inline { len, .. } => *len as usize,
            Store::Spilled(v) => v.len(),
        }
    }

    /// True when the row has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted entries as a slice-like view for binary search.
    fn entries(&self) -> EntriesRef<'_, K> {
        match &self.store {
            Store::Inline { len, slots } => EntriesRef::Inline(&slots[..*len as usize]),
            Store::Spilled(v) => EntriesRef::Spilled(v),
        }
    }

    fn search(&self, key: &K) -> Result<usize, usize> {
        match self.entries() {
            EntriesRef::Inline(slots) => {
                slots.binary_search_by(|s| s.as_ref().expect("slot within len is Some").0.cmp(key))
            }
            EntriesRef::Spilled(v) => v.binary_search_by(|(k, _)| k.cmp(key)),
        }
    }

    /// Returns the coefficient for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&Int> {
        let i = self.search(key).ok()?;
        Some(match &self.store {
            Store::Inline { slots, .. } => &slots[i].as_ref().expect("found slot is Some").1,
            Store::Spilled(v) => &v[i].1,
        })
    }

    /// Returns a mutable reference to the coefficient for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut Int> {
        let i = self.search(key).ok()?;
        Some(match &mut self.store {
            Store::Inline { slots, .. } => &mut slots[i].as_mut().expect("found slot is Some").1,
            Store::Spilled(v) => &mut v[i].1,
        })
    }

    /// True when `key` has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.search(key).is_ok()
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: Int) -> Option<Int> {
        match self.search(&key) {
            Ok(i) => {
                let slot = match &mut self.store {
                    Store::Inline { slots, .. } => {
                        &mut slots[i].as_mut().expect("found slot is Some").1
                    }
                    Store::Spilled(v) => &mut v[i].1,
                };
                Some(std::mem::replace(slot, value))
            }
            Err(i) => {
                self.insert_at(i, key, value);
                None
            }
        }
    }

    fn insert_at(&mut self, i: usize, key: K, value: Int) {
        match &mut self.store {
            Store::Inline { len, slots } => {
                let n = *len as usize;
                if n < INLINE {
                    slots[i..=n].rotate_right(1);
                    slots[i] = Some((key, value));
                    *len += 1;
                } else {
                    // Spill: move the inline entries into a Vec.
                    let mut v: Vec<(K, Int)> = slots
                        .iter_mut()
                        .map(|s| s.take().expect("full row"))
                        .collect();
                    v.insert(i, (key, value));
                    self.store = Store::Spilled(v);
                }
            }
            Store::Spilled(v) => v.insert(i, (key, value)),
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<Int> {
        let i = self.search(key).ok()?;
        match &mut self.store {
            Store::Inline { len, slots } => {
                let n = *len as usize;
                let (_, value) = slots[i].take().expect("found slot is Some");
                slots[i..n].rotate_left(1);
                *len -= 1;
                Some(value)
            }
            Store::Spilled(v) => Some(v.remove(i).1),
        }
    }

    /// Keeps only the entries for which `pred` returns true.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &mut Int) -> bool) {
        match &mut self.store {
            Store::Inline { len, slots } => {
                let n = *len as usize;
                let mut kept = 0usize;
                for i in 0..n {
                    let (k, v) = slots[i].as_mut().expect("slot within len");
                    if pred(k, v) {
                        if kept != i {
                            slots[kept] = slots[i].take();
                        }
                        kept += 1;
                    } else {
                        slots[i] = None;
                    }
                }
                *len = kept as u8;
            }
            Store::Spilled(v) => v.retain_mut(|(k, val)| pred(k, val)),
        }
    }

    /// Iterates the entries in ascending key order.
    pub fn iter(&self) -> RowIter<'_, K> {
        RowIter {
            entries: self.entries(),
            pos: 0,
        }
    }

    /// Iterates the keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates the values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &Int> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Ord + Clone> Default for Row<K> {
    fn default() -> Row<K> {
        Row::new()
    }
}

enum EntriesRef<'a, K> {
    Inline(&'a [Option<(K, Int)>]),
    Spilled(&'a [(K, Int)]),
}

/// Ordered iterator over a [`Row`]'s entries.
pub struct RowIter<'a, K> {
    entries: EntriesRef<'a, K>,
    pos: usize,
}

impl<'a, K> Iterator for RowIter<'a, K> {
    type Item = (&'a K, &'a Int);

    fn next(&mut self) -> Option<(&'a K, &'a Int)> {
        let item = match &self.entries {
            EntriesRef::Inline(slots) => {
                let (k, v) = slots.get(self.pos)?.as_ref().expect("slot within len");
                (k, v)
            }
            EntriesRef::Spilled(v) => {
                let (k, val) = v.get(self.pos)?;
                (k, val)
            }
        };
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.entries {
            EntriesRef::Inline(slots) => slots.len(),
            EntriesRef::Spilled(v) => v.len(),
        };
        let left = n - self.pos;
        (left, Some(left))
    }
}

impl<'a, K: Ord + Clone> IntoIterator for &'a Row<K> {
    type Item = (&'a K, &'a Int);
    type IntoIter = RowIter<'a, K>;
    fn into_iter(self) -> RowIter<'a, K> {
        self.iter()
    }
}

/// Consuming iterator over a [`Row`]'s entries.
pub struct RowIntoIter<K> {
    inner: std::vec::IntoIter<(K, Int)>,
}

impl<K> Iterator for RowIntoIter<K> {
    type Item = (K, Int);
    fn next(&mut self) -> Option<(K, Int)> {
        self.inner.next()
    }
}

impl<K: Ord + Clone> IntoIterator for Row<K> {
    type Item = (K, Int);
    type IntoIter = RowIntoIter<K>;
    fn into_iter(self) -> RowIntoIter<K> {
        let v: Vec<(K, Int)> = match self.store {
            Store::Inline { len, mut slots } => slots[..len as usize]
                .iter_mut()
                .map(|s| s.take().expect("slot within len"))
                .collect(),
            Store::Spilled(v) => v,
        };
        RowIntoIter {
            inner: v.into_iter(),
        }
    }
}

impl<K: Ord + Clone> FromIterator<(K, Int)> for Row<K> {
    fn from_iter<I: IntoIterator<Item = (K, Int)>>(iter: I) -> Row<K> {
        let mut row = Row::new();
        for (k, v) in iter {
            row.insert(k, v);
        }
        row
    }
}

impl<K: Ord + Clone> Extend<(K, Int)> for Row<K> {
    fn extend<I: IntoIterator<Item = (K, Int)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

// Eq / Ord / Hash are defined over the ordered entry sequence, exactly
// matching the derived semantics of a BTreeMap field.

impl<K: Ord + Clone> PartialEq for Row<K> {
    fn eq(&self, other: &Row<K>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}
impl<K: Ord + Clone> Eq for Row<K> {}

impl<K: Ord + Clone> PartialOrd for Row<K> {
    fn partial_cmp(&self, other: &Row<K>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord + Clone> Ord for Row<K> {
    fn cmp(&self, other: &Row<K>) -> Ordering {
        self.iter().cmp(other.iter())
    }
}

impl<K: Ord + Clone + Hash> Hash for Row<K> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for (k, v) in self.iter() {
            k.hash(state);
            v.hash(state);
        }
    }
}

impl<K: Ord + Clone + fmt::Debug> fmt::Debug for Row<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn int(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn inline_insert_get_remove() {
        let mut r: Row<u32> = Row::new();
        assert!(r.is_empty());
        assert_eq!(r.insert(5, int(50)), None);
        assert_eq!(r.insert(1, int(10)), None);
        assert_eq!(r.insert(3, int(30)), None);
        assert_eq!(r.get(&3), Some(&int(30)));
        assert_eq!(r.insert(3, int(33)), Some(int(30)));
        assert_eq!(r.len(), 3);
        let keys: Vec<u32> = r.keys().copied().collect();
        assert_eq!(keys, [1, 3, 5], "ascending key order");
        assert_eq!(r.remove(&1), Some(int(10)));
        assert_eq!(r.remove(&1), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn spill_preserves_order_and_contents() {
        let mut r: Row<u32> = Row::new();
        for k in [9u32, 2, 7, 4, 5, 1, 8] {
            r.insert(k, int(k as i64 * 10));
        }
        assert_eq!(r.len(), 7);
        let keys: Vec<u32> = r.keys().copied().collect();
        assert_eq!(keys, [1, 2, 4, 5, 7, 8, 9]);
        assert_eq!(r.get(&7), Some(&int(70)));
        assert_eq!(r.remove(&4), Some(int(40)));
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn retain_filters_in_both_representations() {
        for n in [3usize, 10] {
            let mut r: Row<u32> = (0..n as u32).map(|k| (k, int(k as i64))).collect();
            r.retain(|k, _| k % 2 == 0);
            let keys: Vec<u32> = r.keys().copied().collect();
            let want: Vec<u32> = (0..n as u32).filter(|k| k % 2 == 0).collect();
            assert_eq!(keys, want, "n={n}");
        }
    }

    proptest! {
        /// The row is observationally identical to a BTreeMap under a
        /// random operation sequence — same entries, same order, same
        /// Eq/Ord between snapshots.
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec(
            (0u8..3, 0u32..12, -50i64..50), 0..40))
        {
            let mut row: Row<u32> = Row::new();
            let mut map: BTreeMap<u32, Int> = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(row.insert(k, int(v)), map.insert(k, int(v)));
                    }
                    1 => {
                        prop_assert_eq!(row.remove(&k), map.remove(&k));
                    }
                    _ => {
                        prop_assert_eq!(row.get(&k), map.get(&k));
                    }
                }
                prop_assert_eq!(row.len(), map.len());
                let rv: Vec<(u32, Int)> = row.iter().map(|(k, v)| (*k, v.clone())).collect();
                let mv: Vec<(u32, Int)> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
                prop_assert_eq!(rv, mv, "ordered entries match");
            }
        }

        /// Ord over rows matches Ord over the equivalent BTreeMaps
        /// (lexicographic on the ordered entry sequence) — the property
        /// the canonical conjunct ordering depends on.
        #[test]
        fn ord_matches_btreemap(a in proptest::collection::vec((0u32..8, -9i64..9), 0..7),
                                b in proptest::collection::vec((0u32..8, -9i64..9), 0..7))
        {
            let ra: Row<u32> = a.iter().map(|&(k, v)| (k, int(v))).collect();
            let rb: Row<u32> = b.iter().map(|&(k, v)| (k, int(v))).collect();
            let ma: BTreeMap<u32, Int> = a.iter().map(|&(k, v)| (k, int(v))).collect();
            let mb: BTreeMap<u32, Int> = b.iter().map(|&(k, v)| (k, int(v))).collect();
            prop_assert_eq!(ra.cmp(&rb), ma.cmp(&mb));
            prop_assert_eq!(ra == rb, ma == mb);
        }
    }
}
