//! Exhaustive grid sweeps of symbolic answers over *two* symbolic
//! parameters, including regions where pieces switch over — the
//! crossover behaviour is exactly what guarded answers must get right.

use presburger::prelude::*;
use presburger_arith::Int as BigInt;
use presburger_counting::{enumerate, try_sum_polynomial};

fn brute_count(
    f: &Formula,
    vars: &[VarId],
    range: std::ops::RangeInclusive<i64>,
    n: VarId,
    nv: i64,
    m: VarId,
    mv: i64,
) -> i64 {
    enumerate::count_formula(f, vars, range, &|v| {
        if v == n {
            BigInt::from(nv)
        } else {
            assert_eq!(v, m);
            BigInt::from(mv)
        }
    }) as i64
}

/// Intersection of a triangle with a band: three crossover regimes.
#[test]
fn triangle_band_crossovers() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.symbol("n");
    let m = s.symbol("m");
    let f = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::le(Affine::var(i), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
        Formula::le(Affine::var(i) + Affine::var(j), Affine::var(m)),
    ]);
    let c = count_solutions(&s, &f, &[i, j]);
    for nv in -2i64..=8 {
        for mv in -2i64..=16 {
            let expect = brute_count(&f, &[i, j], -1..=9, n, nv, m, mv);
            assert_eq!(
                c.eval_i64(&[("n", nv), ("m", mv)]),
                Some(expect),
                "n={nv} m={mv}"
            );
        }
    }
}

/// Rational bounds against two symbols (mod atoms in both parameters).
#[test]
fn rational_bounds_two_symbols() {
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.symbol("n");
    let m = s.symbol("m");
    // ⌈m/2⌉ ≤ x ≤ ⌊n/3⌋, i.e. 2x ≥ m ∧ 3x ≤ n
    let f = Formula::and(vec![
        Formula::le(Affine::var(m), Affine::term(x, 2)),
        Formula::le(Affine::term(x, 3), Affine::var(n)),
    ]);
    let c = count_solutions(&s, &f, &[x]);
    for nv in -4i64..=18 {
        for mv in -6i64..=14 {
            let expect = brute_count(&f, &[x], -8..=8, n, nv, m, mv);
            assert_eq!(
                c.eval_i64(&[("n", nv), ("m", mv)]),
                Some(expect),
                "n={nv} m={mv}"
            );
        }
    }
}

/// A strided diagonal region with two symbols.
#[test]
fn strided_diagonal_two_symbols() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.symbol("n");
    let m = s.symbol("m");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(0), i, Affine::var(n)),
        Formula::between(Affine::constant(0), j, Affine::var(m)),
        Formula::stride(3, Affine::var(i) + Affine::var(j)),
    ]);
    let c = count_solutions(&s, &f, &[i, j]);
    for nv in -1i64..=7 {
        for mv in -1i64..=7 {
            let expect = brute_count(&f, &[i, j], -1..=8, n, nv, m, mv);
            assert_eq!(
                c.eval_i64(&[("n", nv), ("m", mv)]),
                Some(expect),
                "n={nv} m={mv}"
            );
        }
    }
}

/// Negative-bound polynomial sums: odd powers must cancel correctly
/// across zero (the §4.2 negative-bounds subtlety).
#[test]
fn negative_bound_odd_power_sums() {
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.symbol("n");
    let m = s.symbol("m");
    let f = Formula::and(vec![
        Formula::le(-Affine::var(m), Affine::var(x)), // x >= -m
        Formula::le(Affine::var(x), Affine::var(n)),
    ]);
    let z = QPoly::var(x) * QPoly::var(x) * QPoly::var(x); // x³
    let c = try_sum_polynomial(&s, &f, &[x], &z, &CountOptions::default()).unwrap();
    for nv in -3i64..=6 {
        for mv in -3i64..=6 {
            let brute: i64 = (-mv..=nv).map(|v| v * v * v).sum();
            assert_eq!(
                c.eval_rat(&[("n", nv), ("m", mv)]),
                presburger_arith::Rat::from(brute),
                "n={nv} m={mv}"
            );
        }
    }
    // symmetric range: the sum must vanish identically
    assert_eq!(
        c.eval_rat(&[("n", 5), ("m", 5)]),
        presburger_arith::Rat::zero()
    );
}

/// A four-piece-mode crosscheck on a two-symbol workload.
#[test]
fn four_piece_two_symbols() {
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.symbol("n");
    let m = s.symbol("m");
    let f = Formula::and(vec![
        Formula::le(Affine::var(m), Affine::var(x)),
        Formula::le(Affine::var(x), Affine::var(n)),
    ]);
    let z = QPoly::var(x) * QPoly::var(x);
    let default = try_sum_polynomial(&s, &f, &[x], &z, &CountOptions::default()).unwrap();
    let four = try_sum_polynomial(
        &s,
        &f,
        &[x],
        &z,
        &CountOptions {
            four_piece: true,
            ..CountOptions::default()
        },
    )
    .unwrap();
    for nv in -5i64..=5 {
        for mv in -5i64..=5 {
            assert_eq!(
                default.eval_rat(&[("n", nv), ("m", mv)]),
                four.eval_rat(&[("n", nv), ("m", mv)]),
                "n={nv} m={mv}"
            );
        }
    }
    // the four-piece answer has more pieces — that is its point
    assert!(four.num_pieces() >= default.num_pieces());
}
