//! Integration tests for resource-governed execution: budgets,
//! deadlines, cancellation, panic isolation, and graceful degradation
//! to the paper's §4.6 bounds.
//!
//! The `fault_injection_from_env` test is the target of the check.sh
//! fault matrix: it is driven by `PRESBURGER_FAULT=<site>:<nth>[:panic]`
//! and asserts the documented Outcome/CountError for whichever site is
//! armed (see DESIGN.md §9).

use presburger::prelude::*;
use presburger::trace::govern::{parse_fault, FaultSite};
use presburger_counting::Symbolic;
use std::time::Duration;

/// Example 9: `1 ≤ i ∧ 1 ≤ j ≤ n ∧ 2i ≤ 3j` over `[i, j]` — closed
/// form `(3n² + 2n − (n mod 2)) / 4`.
fn e9(s: &mut Space) -> (Formula, Vec<VarId>) {
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let f = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::between(Affine::constant(1), j, Affine::var(n)),
        Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
    ]);
    (f, vec![i, j])
}

/// The paper's intro example (E4): `1 ≤ i ≤ n ∧ i ≤ j ≤ m`.
fn e4(s: &mut Space) -> (Formula, Vec<VarId>) {
    let i = s.var("i");
    let j = s.var("j");
    let n = s.var("n");
    let m = s.var("m");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::var(i), j, Affine::var(m)),
    ]);
    (f, vec![i, j])
}

/// Example 11: `∃β: 3β−α ≥ 0 ∧ −3β+α+7 ≥ 0 ∧ α−2β−1 ≥ 0 ∧ −α+2β+5 ≥ 0`
/// counted over α — ground truth α ∈ {3} ∪ [5, 27] ∪ {29}, 25 points.
fn e11(s: &mut Space) -> (Formula, Vec<VarId>) {
    let a = s.var("alpha");
    let b = s.var("beta");
    let f = Formula::exists(
        vec![b],
        Formula::and(vec![
            Formula::ge(Affine::from_terms(&[(b, 3), (a, -1)], 0)),
            Formula::ge(Affine::from_terms(&[(b, -3), (a, 1)], 7)),
            Formula::ge(Affine::from_terms(&[(a, 1), (b, -2)], -1)),
            Formula::ge(Affine::from_terms(&[(a, -1), (b, 2)], 5)),
        ]),
    );
    (f, vec![a])
}

/// A three-clause union, for multi-clause degradation and determinism.
fn union3(s: &mut Space) -> (Formula, Vec<VarId>) {
    let x = s.var("x");
    let n = s.var("n");
    let f = Formula::or(vec![
        Formula::between(Affine::constant(1), x, Affine::var(n)),
        Formula::between(Affine::constant(20), x, Affine::constant(30)),
        Formula::and(vec![
            Formula::between(Affine::constant(40), x, Affine::constant(60)),
            Formula::stride(3, Affine::var(x)),
        ]),
    ]);
    (f, vec![x])
}

fn governed(s: &Space, f: &Formula, vars: &[VarId], gov: &Governor) -> Result<Outcome, CountError> {
    try_count_solutions_governed(s, f, vars, &CountOptions::default(), gov)
}

/// Asserts `lower ≤ exact ≤ upper` pointwise over the sample bindings.
fn assert_brackets(
    exact: &Symbolic,
    lower: &Symbolic,
    upper: &Symbolic,
    bindings: &[Vec<(&str, i64)>],
) {
    for b in bindings {
        let e = exact.eval_rat(b);
        let l = lower.eval_rat(b);
        let u = upper.eval_rat(b);
        assert!(
            l <= e && e <= u,
            "bracket violated at {b:?}: {l} <= {e} <= {u}"
        );
    }
}

/// Runs a formula with every clause forced to degrade (the `sum_depth`
/// fault fires on the first recursion step of every clause task) and
/// checks the §4.6 bracket against the ungoverned exact answer.
fn check_degraded_brackets(s: &Space, f: &Formula, vars: &[VarId], bindings: &[Vec<(&str, i64)>]) {
    let exact = try_count_solutions(s, f, vars, &CountOptions::default()).expect("countable");
    let gov = Governor::new(Budgets::unlimited())
        .with_fault("sum_depth:1")
        .expect("valid spec");
    match governed(s, f, vars, &gov).expect("degrades, not errors") {
        Outcome::Exact(_) => panic!("sum_depth:1 must degrade every clause"),
        Outcome::Bounded {
            lower,
            upper,
            why,
            clauses,
        } => {
            assert!(
                matches!(
                    why,
                    CountError::BudgetExceeded {
                        resource: "sum_depth",
                        ..
                    }
                ),
                "unexpected why: {why}"
            );
            assert!(clauses
                .iter()
                .all(|c| matches!(c, ClauseStatus::Degraded { .. })));
            assert_brackets(&exact, &lower, &upper, bindings);
        }
    }
}

#[test]
fn degraded_brackets_e9() {
    let mut s = Space::new();
    let (f, vars) = e9(&mut s);
    let bindings: Vec<Vec<(&str, i64)>> = (-2..=20).map(|n| vec![("n", n)]).collect();
    check_degraded_brackets(&s, &f, &vars, &bindings);
}

#[test]
fn degraded_brackets_e4() {
    let mut s = Space::new();
    let (f, vars) = e4(&mut s);
    let mut bindings: Vec<Vec<(&str, i64)>> = Vec::new();
    for n in -1..=8 {
        for m in -1..=8 {
            bindings.push(vec![("n", n), ("m", m)]);
        }
    }
    check_degraded_brackets(&s, &f, &vars, &bindings);
}

#[test]
fn degraded_brackets_e11() {
    let mut s = Space::new();
    let (f, vars) = e11(&mut s);
    // no symbols: the single binding is empty; exact count is 25
    let exact = try_count_solutions(&s, &f, &vars, &CountOptions::default()).unwrap();
    assert_eq!(exact.eval_i64(&[]), Some(25));
    check_degraded_brackets(&s, &f, &vars, &[vec![]]);
}

#[test]
fn governed_without_budgets_matches_plain() {
    let mut s = Space::new();
    let (f, vars) = e9(&mut s);
    let plain = try_count_solutions(&s, &f, &vars, &CountOptions::default()).unwrap();
    let gov = Governor::new(Budgets::unlimited());
    match governed(&s, &f, &vars, &gov).unwrap() {
        Outcome::Exact(sym) => {
            assert_eq!(sym.to_display_string(), plain.to_display_string());
        }
        Outcome::Bounded { why, .. } => panic!("degraded without budgets: {why}"),
    }
}

#[test]
fn pre_cancelled_token_errors() {
    let mut s = Space::new();
    let (f, vars) = e9(&mut s);
    let gov = Governor::new(Budgets::unlimited());
    gov.cancel();
    match governed(&s, &f, &vars, &gov) {
        Err(CountError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn zero_deadline_errors() {
    let mut s = Space::new();
    let (f, vars) = e9(&mut s);
    let gov = Governor::new(Budgets {
        deadline: Some(Duration::ZERO),
        ..Budgets::unlimited()
    });
    // An already-expired deadline trips in the DNF phase, before any
    // clause exists to degrade: the deadline surfaces as the error.
    match governed(&s, &f, &vars, &gov) {
        Err(CountError::Deadline { limit_ms: 0, .. }) => {}
        other => panic!("expected a deadline error, got {other:?}"),
    }
}

#[test]
fn degrade_policy_error_fails_instead_of_bounding() {
    let mut s = Space::new();
    let (f, vars) = e9(&mut s);
    let gov = Governor::new(Budgets::unlimited())
        .with_fault("sum_depth:1")
        .unwrap()
        .with_degrade(DegradePolicy::Error);
    match governed(&s, &f, &vars, &gov) {
        Err(CountError::BudgetExceeded {
            resource: "sum_depth",
            ..
        }) => {}
        other => panic!("expected a budget error, got {other:?}"),
    }
}

#[test]
fn splinter_budget_degrades_e11() {
    // E11's exact count splinters (§5.2); a splinter cap of zero forces
    // the degradation ladder through a real budget (not a fault).
    let mut s = Space::new();
    let (f, vars) = e11(&mut s);
    let gov = Governor::new(Budgets {
        max_splinters: Some(0),
        ..Budgets::unlimited()
    });
    match governed(&s, &f, &vars, &gov) {
        // Splinters can be charged while the DNF phase projects the
        // existential variable (an error) or inside the clause task
        // (degrades): both must name the splinter budget.
        Ok(Outcome::Bounded {
            lower, upper, why, ..
        }) => {
            assert!(
                matches!(
                    why,
                    CountError::BudgetExceeded {
                        resource: "splinters_generated",
                        ..
                    }
                ),
                "unexpected why: {why}"
            );
            let l = lower.eval_rat(&[]);
            let u = upper.eval_rat(&[]);
            assert!(
                l <= Rat::from(25) && Rat::from(25) <= u,
                "bracket violated: {l} <= 25 <= {u}"
            );
        }
        Err(CountError::BudgetExceeded {
            resource: "splinters_generated",
            ..
        }) => {}
        other => panic!("expected the splinter budget to fire, got {other:?}"),
    }
}

#[test]
fn coeff_bits_budget_trips_on_bignum_growth() {
    // Σ x⁵ over 1 ≤ a·x ≤ n with a ≈ 3·10⁹: the closed form carries
    // coefficients with denominator a⁶ ≈ 7·10⁵⁶ (≈ 190 bits), which
    // promotes past i128 and charges the max_coeff_bits gauge.
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.var("n");
    const A: i64 = 3_000_000_019;
    let f = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::term(x, A)),
        Formula::le(Affine::term(x, A), Affine::var(n)),
    ]);
    let z = QPoly::var(x) * QPoly::var(x) * QPoly::var(x) * QPoly::var(x) * QPoly::var(x);
    let opts = CountOptions::default();

    // Ungoverned sanity: Σ_{x=1}^{3} x⁵ = 276 at n = 3a.
    let plain = presburger_counting::try_sum_polynomial(&s, &f, &[x], &z, &opts).unwrap();
    assert_eq!(plain.eval_rat(&[("n", 3 * A)]), Rat::from(276));

    let gov = Governor::new(Budgets {
        max_coeff_bits: Some(100),
        ..Budgets::unlimited()
    });
    match try_sum_polynomial_governed(&s, &f, &[x], &z, &opts, &gov) {
        Ok(Outcome::Bounded { why, .. }) => assert!(
            matches!(
                why,
                CountError::BudgetExceeded {
                    resource: "max_coeff_bits",
                    ..
                }
            ),
            "unexpected why: {why}"
        ),
        Err(CountError::BudgetExceeded {
            resource: "max_coeff_bits",
            ..
        }) => {}
        other => panic!("expected the coefficient budget to fire, got {other:?}"),
    }
}

#[test]
fn governed_determinism_across_thread_counts() {
    // Degraded outcomes keep PR 2's determinism guarantee: count
    // budgets trip as a pure function of each clause task, so the
    // rendered bounds and the per-clause statuses are byte-identical
    // at every thread count.
    let mut s = Space::new();
    let (f, vars) = union3(&mut s);
    let run = |threads: usize| {
        let gov = Governor::new(Budgets::unlimited())
            .with_fault("sum_depth:1")
            .unwrap();
        let opts = CountOptions {
            threads,
            ..CountOptions::default()
        };
        match try_count_solutions_governed(&s, &f, &vars, &opts, &gov).unwrap() {
            Outcome::Exact(_) => panic!("sum_depth:1 must degrade"),
            Outcome::Bounded {
                lower,
                upper,
                why,
                clauses,
            } => (
                lower.to_display_string(),
                upper.to_display_string(),
                why.to_string(),
                clauses,
            ),
        }
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel);
}

/// The check.sh fault-matrix target. Reads `PRESBURGER_FAULT`, runs a
/// formula that charges the armed site, and asserts the documented
/// Outcome/CountError for that site (DESIGN.md §9). A no-op when the
/// variable is unset, so plain `cargo test` runs are unaffected.
#[test]
fn fault_injection_from_env() {
    let Ok(spec) = std::env::var("PRESBURGER_FAULT") else {
        return;
    };
    let fault = parse_fault(&spec).expect("matrix specs are valid");

    // E11 charges every site except max_coeff_bits (splinters, DNF
    // work, depth, pieces, normalize heartbeats); bignum growth needs
    // the dedicated Σ x⁵ workload.
    let mut s = Space::new();
    let is_coeff_site = matches!(
        fault.site,
        FaultSite::Counter(c) if c.name() == "max_coeff_bits"
    );
    let outcome = if is_coeff_site {
        let x = s.var("x");
        let n = s.var("n");
        const A: i64 = 3_000_000_019;
        let f = Formula::and(vec![
            Formula::le(Affine::constant(1), Affine::term(x, A)),
            Formula::le(Affine::term(x, A), Affine::var(n)),
        ]);
        let z = QPoly::var(x) * QPoly::var(x) * QPoly::var(x) * QPoly::var(x) * QPoly::var(x);
        let gov = Governor::new(Budgets {
            deadline: Some(Duration::from_secs(30)),
            ..Budgets::unlimited()
        });
        try_sum_polynomial_governed(&s, &f, &[x], &z, &CountOptions::default(), &gov)
    } else {
        let (f, vars) = e11(&mut s);
        let gov = Governor::new(Budgets {
            deadline: Some(Duration::from_secs(30)),
            ..Budgets::unlimited()
        });
        governed(&s, &f, &vars, &gov)
    };

    if fault.panic {
        // Injected panics exercise panic isolation: caught, reported
        // as a deterministic Internal error, never a process abort.
        match outcome {
            Err(CountError::Internal(msg)) => {
                assert!(msg.contains("injected fault"), "was: {msg}")
            }
            other => panic!("expected Internal from {spec}, got {other:?}"),
        }
        return;
    }
    match fault.site {
        FaultSite::Cancel => match outcome {
            Err(CountError::Cancelled) => {}
            other => panic!("expected Cancelled from {spec}, got {other:?}"),
        },
        FaultSite::Deadline => match outcome {
            // Degradable: Bounded when tripped inside a clause task,
            // the error itself when tripped in the DNF phase.
            Ok(Outcome::Bounded { why, .. }) => {
                assert!(matches!(why, CountError::Deadline { .. }), "why: {why}")
            }
            Err(CountError::Deadline { .. }) => {}
            other => panic!("expected a deadline outcome from {spec}, got {other:?}"),
        },
        FaultSite::Counter(c) => match outcome {
            Ok(Outcome::Bounded { why, .. }) => match why {
                CountError::BudgetExceeded { resource, .. } => {
                    assert_eq!(resource, c.name(), "spec {spec}")
                }
                other => panic!("expected a budget why from {spec}, got {other}"),
            },
            Err(CountError::BudgetExceeded { resource, .. }) => {
                assert_eq!(resource, c.name(), "spec {spec}")
            }
            other => panic!("expected a budget outcome from {spec}, got {other:?}"),
        },
    }
}

mod random_budget_brackets {
    use super::*;
    use presburger::gen::{generate, BudgetChoice, GenConfig, Rng};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// §4.6 bracketing as a property: for grammar-generated
        /// formulas under random budget mixes, every `Bounded` outcome
        /// satisfies `lower ≤ exact ≤ upper` at every parameter point,
        /// where `exact` is the ungoverned answer.
        #[test]
        fn bounded_outcomes_bracket_exact(case_seed in 0u64..10_000, budget_seed in 0u64..10_000) {
            let case = generate(&mut Rng::new(0xB0B).fork(case_seed), &GenConfig::default());
            let bc = BudgetChoice::draw(&mut Rng::new(0xB0B5).fork(budget_seed));
            let union = case.union();

            // The reference answer must itself be cheap: gate on a
            // governed deadline-only run so this test never hangs on a
            // pathological case.
            let ref_gov = Governor::new(Budgets {
                deadline: Some(Duration::from_secs(2)),
                ..Budgets::unlimited()
            });
            let exact = match try_count_solutions_governed(
                &case.space, &union, &case.vars, &CountOptions::default(), &ref_gov,
            ) {
                Ok(Outcome::Exact(sym)) => sym,
                _ => return Ok(()), // too heavy or degenerate: not a bracketing subject
            };

            // An Exact outcome or a structured budget error are both
            // fine here (exactness is family 3's job in
            // fuzz_differential); only Bounded carries the claim.
            let gov = Governor::new(bc.budgets);
            if let Ok(Outcome::Bounded { lower, upper, .. }) = try_count_solutions_governed(
                &case.space, &union, &case.vars, &CountOptions::default(), &gov,
            ) {
                let points: Vec<Vec<(String, i64)>> = if case.symbols.is_empty() {
                    vec![Vec::new()]
                } else {
                    (-3i64..=3)
                        .map(|v| {
                            case.symbols
                                .iter()
                                .map(|s| (case.space.name(*s).to_string(), v))
                                .collect()
                        })
                        .collect()
                };
                for bind in &points {
                    let refs: Vec<(&str, i64)> =
                        bind.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                    let e = exact.eval_rat(&refs);
                    let l = lower.eval_rat(&refs);
                    let u = upper.eval_rat(&refs);
                    prop_assert!(
                        l <= e && e <= u,
                        "bracket violated at {:?} under {:?}: {} <= {} <= {}\n{}",
                        bind, bc.budgets, l, e, u, case.describe()
                    );
                }
            }
        }
    }
}
