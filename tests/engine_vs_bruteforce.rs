//! Randomized differential testing: the symbolic engine against the
//! shared brute-force oracle (`presburger::gen::oracle`) on generated
//! formulas. Grammar-directed generation with shrinking lives in
//! `tests/fuzz_differential.rs`; this file keeps the hand-shaped
//! proptest workloads.
//!
//! Every generated workload bounds the summation variables inside a
//! box so the brute-force reference is effective; the symbolic answer
//! is then evaluated at many concrete symbol values and compared.

use presburger::gen::oracle::{brute_force, brute_sum};
use presburger::prelude::*;
use presburger_arith::Int as BigInt;
use presburger_counting::{try_count_solutions, try_sum_polynomial};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Raw coefficients for one extra constraint `a·i + b·j + c·n + k ≥ 0`.
type RawAtom = (i64, i64, i64, i64);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counts over random conjunctions match brute force.
    #[test]
    fn random_conjunctions(
        atoms in proptest::collection::vec(
            (-3i64..=3, -3i64..=3, -1i64..=1, -6i64..=6),
            1..4,
        )
    ) {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let mut parts = vec![
            Formula::between(Affine::constant(-4), i, Affine::constant(6)),
            Formula::between(Affine::constant(-4), j, Affine::constant(6)),
        ];
        for (a, b, c, k) in atoms {
            let _: RawAtom = (a, b, c, k);
            parts.push(Formula::ge(Affine::from_terms(&[(i, a), (j, b), (n, c)], k)));
        }
        let f = Formula::and(parts);
        let sym = try_count_solutions(&s, &f, &[i, j], &CountOptions::default()).unwrap();
        for nv in -3i64..=5 {
            let brute = brute_force(&f, &[i, j], -10..=12, &|_| BigInt::from(nv));
            let got = sym.eval_i64(&[("n", nv)]);
            prop_assert_eq!(got, Some(brute as i64), "n={}", nv);
        }
    }

    /// Counts over random unions (disjoint-DNF path) match brute force.
    #[test]
    fn random_unions(a0 in -3i64..3, a1 in -3i64..3, b0 in 0i64..5, b1 in 0i64..5) {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let f = Formula::or(vec![
            Formula::between(Affine::constant(a0), x, Affine::constant(a0 + b0)),
            Formula::between(Affine::constant(a1), x, Affine::constant(a1 + b1)),
            Formula::and(vec![
                Formula::between(Affine::constant(0), x, Affine::var(n)),
                Formula::stride(2, Affine::var(x)),
            ]),
        ]);
        let sym = try_count_solutions(&s, &f, &[x], &CountOptions::default()).unwrap();
        for nv in -2i64..=8 {
            let brute = brute_force(&f, &[x], -10..=14, &|_| BigInt::from(nv));
            prop_assert_eq!(sym.eval_i64(&[("n", nv)]), Some(brute as i64), "n={}", nv);
        }
    }

    /// Polynomial summation matches brute force.
    #[test]
    fn random_polynomial_sums(c0 in -2i64..=2, c1 in -2i64..=2, c2 in 0i64..=2) {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::var(n)),
            Formula::between(Affine::var(i), j, Affine::var(n)),
        ]);
        // z = c0 + c1·i + c2·i·j
        let z = QPoly::constant(presburger_arith::Rat::from(c0))
            + QPoly::var(i).scale(&presburger_arith::Rat::from(c1))
            + (QPoly::var(i) * QPoly::var(j)).scale(&presburger_arith::Rat::from(c2));
        let sym = try_sum_polynomial(&s, &f, &[i, j], &z, &CountOptions::default()).unwrap();
        for nv in -1i64..=7 {
            let brute = brute_sum(&f, &[i, j], -1..=8, &|_| BigInt::from(nv), &z);
            prop_assert_eq!(sym.eval_rat(&[("n", nv)]), brute, "n={}", nv);
        }
    }

    /// Strided (non-unit coefficient) bounds match brute force.
    #[test]
    fn random_rational_bounds(a in 2i64..=4, b in 2i64..=4, k in -3i64..=3) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        // a·x ≤ n + k ∧ 1 ≤ x ∧ b·y ≤ 3x ∧ 0 ≤ y
        let f = Formula::and(vec![
            Formula::le(Affine::constant(1), Affine::var(x)),
            Formula::le(Affine::term(x, a), Affine::var(n) + Affine::constant(k)),
            Formula::le(Affine::constant(0), Affine::var(y)),
            Formula::le(Affine::term(y, b), Affine::term(x, 3)),
        ]);
        let sym = try_count_solutions(&s, &f, &[x, y], &CountOptions::default()).unwrap();
        for nv in -2i64..=14 {
            let brute = brute_force(&f, &[x, y], -2..=30, &|_| BigInt::from(nv));
            prop_assert_eq!(sym.eval_i64(&[("n", nv)]), Some(brute as i64), "n={}", nv);
        }
    }

    /// Equality-constrained (projected) counts match brute force.
    #[test]
    fn random_projected(a in 1i64..=3, b in 1i64..=3, c in -2i64..=2) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        // a·x + b·y = n + c within a box
        let f = Formula::and(vec![
            Formula::eq(
                Affine::from_terms(&[(x, a), (y, b)], 0),
                Affine::var(n) + Affine::constant(c),
            ),
            Formula::between(Affine::constant(-6), x, Affine::constant(9)),
            Formula::between(Affine::constant(-6), y, Affine::constant(9)),
        ]);
        let sym = try_count_solutions(&s, &f, &[x, y], &CountOptions::default()).unwrap();
        for nv in -6i64..=12 {
            let brute = brute_force(&f, &[x, y], -8..=11, &|_| BigInt::from(nv));
            prop_assert_eq!(sym.eval_i64(&[("n", nv)]), Some(brute as i64), "n={}", nv);
        }
    }

    /// Negation (holes) matches brute force.
    #[test]
    fn random_negations(h0 in -2i64..=4, h1 in 0i64..=4) {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::between(Affine::constant(-3), x, Affine::var(n)),
            Formula::not(Formula::between(
                Affine::constant(h0),
                x,
                Affine::constant(h0 + h1),
            )),
        ]);
        let sym = try_count_solutions(&s, &f, &[x], &CountOptions::default()).unwrap();
        for nv in -5i64..=9 {
            let brute = brute_force(&f, &[x], -8..=12, &|_| BigInt::from(nv));
            prop_assert_eq!(sym.eval_i64(&[("n", nv)]), Some(brute as i64), "n={}", nv);
        }
    }

    /// Upper/lower bound modes always bracket the exact count.
    #[test]
    fn approximation_brackets(a in 2i64..=5, k in -2i64..=2) {
        let mut s = Space::new();
        let x = s.var("x");
        let n = s.var("n");
        let f = Formula::and(vec![
            Formula::le(Affine::constant(0), Affine::var(x)),
            Formula::le(Affine::term(x, a), Affine::var(n) + Affine::constant(k)),
        ]);
        let exact = try_count_solutions(&s, &f, &[x], &CountOptions::default()).unwrap();
        let hi = try_count_solutions(&s, &f, &[x], &CountOptions {
            mode: Mode::UpperBound, ..CountOptions::default()
        }).unwrap();
        let lo = try_count_solutions(&s, &f, &[x], &CountOptions {
            mode: Mode::LowerBound, ..CountOptions::default()
        }).unwrap();
        for nv in 0i64..=16 {
            let e = exact.eval_rat(&[("n", nv)]);
            let u = hi.eval_rat(&[("n", nv)]);
            let l = lo.eval_rat(&[("n", nv)]);
            prop_assert!(l <= e && e <= u, "n={}: {} <= {} <= {} violated", nv, l, e, u);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Governed counting is total: under tight budgets and a deadline,
    /// random formulas never panic — they return Exact, Bounded, or a
    /// structured error — and never run past ~2× the deadline (the
    /// degrade-deadline guarantee), at 1 and at 4 worker threads.
    #[test]
    fn no_panic_under_governed_budgets(
        atoms in proptest::collection::vec(
            (-4i64..=4, -4i64..=4, -1i64..=1, -8i64..=8),
            1..5,
        ),
        m in 2i64..=4,
        hole in (-2i64..=3, 0i64..=3),
    ) {
        let mut s = Space::new();
        let i = s.var("i");
        let j = s.var("j");
        let n = s.var("n");
        let mut parts = vec![
            Formula::between(Affine::constant(-4), i, Affine::constant(6)),
            Formula::between(Affine::constant(-4), j, Affine::constant(6)),
            Formula::stride(m, Affine::var(i)),
            Formula::not(Formula::between(
                Affine::constant(hole.0),
                j,
                Affine::constant(hole.0 + hole.1),
            )),
        ];
        for (a, b, c, k) in atoms {
            let _: RawAtom = (a, b, c, k);
            parts.push(Formula::ge(Affine::from_terms(&[(i, a), (j, b), (n, c)], k)));
        }
        let f = Formula::and(parts);
        const DEADLINE: Duration = Duration::from_millis(250);
        for threads in [1usize, 4] {
            let gov = Governor::new(Budgets {
                deadline: Some(DEADLINE),
                max_splinters: Some(8),
                max_dnf_clauses: Some(64),
                max_depth: Some(4),
                max_pieces: Some(16),
                max_coeff_bits: Some(128),
            });
            let opts = CountOptions { threads, ..CountOptions::default() };
            let started = Instant::now();
            // Totality IS the assertion: a panic here fails the test.
            let outcome = try_count_solutions_governed(&s, &f, &[i, j], &opts, &gov);
            let elapsed = started.elapsed();
            // 2× the deadline plus slack for scheduling noise and the
            // ungoverned polish pass.
            prop_assert!(
                elapsed <= DEADLINE * 2 + Duration::from_millis(750),
                "threads={}: governed run took {:?}",
                threads,
                elapsed
            );
            match outcome {
                Ok(Outcome::Exact(_)) | Ok(Outcome::Bounded { .. }) => {}
                Err(
                    CountError::Unbounded { .. }
                    | CountError::TooComplex(_)
                    | CountError::BudgetExceeded { .. }
                    | CountError::Deadline { .. },
                ) => {}
                Err(e) => prop_assert!(false, "threads={}: unexpected error {}", threads, e),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The kitchen sink: unions of conjunctions with strides,
    /// equalities and negations, counted against brute force.
    #[test]
    fn random_full_mix(
        g1 in (-3i64..=3, -3i64..=3, -6i64..=6),
        g2 in (-3i64..=3, -3i64..=3, -6i64..=6),
        m in 2i64..=3,
        r in 0i64..=2,
        eq in (1i64..=2, 1i64..=2, -3i64..=3),
        hole in (-2i64..=3, 0i64..=3),
    ) {
        let mut s = Space::new();
        let x = s.var("x");
        let y = s.var("y");
        let n = s.var("n");
        let boxed = Formula::and(vec![
            Formula::between(Affine::constant(-4), x, Affine::constant(7)),
            Formula::between(Affine::constant(-4), y, Affine::constant(7)),
        ]);
        let branch1 = Formula::and(vec![
            boxed.clone(),
            Formula::ge(Affine::from_terms(&[(x, g1.0), (y, g1.1), (n, 1)], g1.2)),
            Formula::stride(m, Affine::var(x) + Affine::constant(r)),
        ]);
        let branch2 = Formula::and(vec![
            boxed.clone(),
            Formula::ge(Affine::from_terms(&[(x, g2.0), (y, g2.1), (n, -1)], g2.2)),
            Formula::eq(
                Affine::from_terms(&[(x, eq.0), (y, eq.1)], 0),
                Affine::var(n) + Affine::constant(eq.2),
            ),
        ]);
        let branch3 = Formula::and(vec![
            boxed,
            Formula::not(Formula::between(
                Affine::constant(hole.0),
                x,
                Affine::constant(hole.0 + hole.1),
            )),
            Formula::le(Affine::var(y), Affine::var(x)),
        ]);
        let f = Formula::or(vec![branch1, branch2, branch3]);
        let sym = try_count_solutions(&s, &f, &[x, y], &CountOptions::default()).unwrap();
        for nv in -3i64..=6 {
            let brute = brute_force(&f, &[x, y], -6..=9, &|_| BigInt::from(nv));
            prop_assert_eq!(sym.eval_i64(&[("n", nv)]), Some(brute as i64), "n={}", nv);
        }
    }
}
