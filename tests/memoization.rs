//! Memoization transparency: answers AND pipeline counters must be
//! byte-identical with the memo on or off, at any thread count, and at
//! any table warmth. The memo's only observable footprint is its own
//! meta-counters (`MemoHit` / `MemoMiss` / `MemoBytes`), which report
//! hit patterns and are excluded from the comparisons
//! ([`PipelineStats::without_memo_meta`]).
//!
//! The workload is the splinter-heavy residue stencil from the stress
//! experiments: every clause carries a stride and a non-unit
//! coefficient, so every clause task exercises the memoized elimination
//! path (dark shadow + splinters), and the clauses share sub-problems —
//! exactly what the memo exists to exploit.

use presburger::prelude::*;
use presburger::trace::{self, Counter, PipelineStats};
use presburger_counting::{try_count_solutions, Symbolic};

/// The E9 parity region `1 ≤ i ∧ 1 ≤ j ≤ n ∧ 2i ≤ 3j`, partitioned
/// into `k` clauses by the residue of `i` mod `k`. The union
/// telescopes back to the closed form `(3n² + 2n − (n mod 2))/4`.
fn residue_stencil(s: &mut Space, k: i64) -> (Formula, Vec<VarId>) {
    let i = s.var("i");
    let j = s.var("j");
    let n = s.symbol("n");
    let clauses = (0..k)
        .map(|c| {
            Formula::and(vec![
                Formula::le(Affine::constant(1), Affine::var(i)),
                Formula::le(Affine::constant(1), Affine::var(j)),
                Formula::le(Affine::var(j), Affine::var(n)),
                Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
                Formula::stride(k, Affine::var(i) - Affine::constant(c)),
            ])
        })
        .collect();
    (Formula::or(clauses), vec![i, j])
}

/// Runs one governed-free count with counters on, returning the answer
/// and the counter delta it charged.
fn metered(
    s: &Space,
    f: &Formula,
    vars: &[VarId],
    opts: &CountOptions,
) -> (Symbolic, PipelineStats) {
    trace::enable_counters(true);
    let before = trace::snapshot();
    let r = try_count_solutions(s, f, vars, opts).expect("countable");
    let delta = trace::snapshot().delta(&before);
    trace::enable_counters(false);
    (r, delta)
}

#[test]
fn answers_and_counters_identical_memo_on_off_across_threads() {
    let mut s = Space::new();
    let (f, vars) = residue_stencil(&mut s, 6);
    let mut answers: Vec<String> = Vec::new();
    let mut masked: Vec<PipelineStats> = Vec::new();
    for memo in [true, false] {
        for threads in [1usize, 2, 8] {
            let opts = CountOptions {
                threads,
                memo,
                ..CountOptions::default()
            };
            let (r, delta) = metered(&s, &f, &vars, &opts);
            if !memo {
                assert_eq!(delta.get(Counter::MemoHit), 0, "memo off must not hit");
                assert_eq!(delta.get(Counter::MemoMiss), 0, "memo off must not probe");
            }
            answers.push(r.to_display_string());
            masked.push(delta.without_memo_meta());
        }
    }
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "answers must be byte-identical memo-on/off at 1/2/8 threads: {answers:?}"
    );
    for (i, pair) in masked.windows(2).enumerate() {
        assert!(
            pair[0] == pair[1],
            "counter totals (memo meta masked) diverged at run {i}"
        );
    }
}

#[test]
fn warm_table_hits_without_changing_anything() {
    let mut s = Space::new();
    let (f, vars) = residue_stencil(&mut s, 5);
    let opts = CountOptions {
        memo: true,
        ..CountOptions::default()
    };
    let (cold_r, cold) = metered(&s, &f, &vars, &opts);
    let (warm_r, warm) = metered(&s, &f, &vars, &opts);
    assert_eq!(cold_r.to_display_string(), warm_r.to_display_string());
    // The residue clauses share elimination sub-problems, so even the
    // cold run hits; the warm run must be served largely from the table.
    assert!(
        warm.get(Counter::MemoHit) > 0,
        "second identical query must hit the memo: {warm}"
    );
    assert!(
        warm.get(Counter::MemoMiss) < cold.get(Counter::MemoMiss)
            || cold.get(Counter::MemoMiss) == 0,
        "warm run must miss less than the cold run: cold {cold} warm {warm}"
    );
    assert_eq!(
        cold.without_memo_meta(),
        warm.without_memo_meta(),
        "table warmth must not leak into replayed counters"
    );
    // And the answer itself matches the region's closed form.
    for nv in 0i64..=12 {
        let expect = if nv >= 1 {
            (3 * nv * nv + 2 * nv - nv.rem_euclid(2)) / 4
        } else {
            0
        };
        assert_eq!(warm_r.eval_i64(&[("n", nv)]), Some(expect), "n={nv}");
    }
}

#[test]
fn governed_deadline_only_run_still_memoizes_and_matches() {
    // Deadline-only governed regions are memo-safe (no counter caps, no
    // armed fault); the governed answer must match the ungoverned one
    // with the memo on either side.
    let mut s = Space::new();
    let (f, vars) = residue_stencil(&mut s, 4);
    let opts_on = CountOptions {
        memo: true,
        ..CountOptions::default()
    };
    let opts_off = CountOptions {
        memo: false,
        ..CountOptions::default()
    };
    let plain = try_count_solutions(&s, &f, &vars, &opts_off).expect("countable");
    let gov = Governor::new(Budgets {
        deadline: Some(std::time::Duration::from_secs(120)),
        ..Budgets::unlimited()
    });
    let governed =
        presburger::try_count_solutions_governed(&s, &f, &vars, &opts_on, &gov).expect("governed");
    match governed {
        Outcome::Exact(c) => assert_eq!(c.to_display_string(), plain.to_display_string()),
        Outcome::Bounded { .. } => panic!("a 120 s deadline must not trip on this workload"),
    }
}
