//! §2.1's two non-convex representations — stride format and projected
//! format — on the paper's own example:
//!
//! > the solutions for x in (∃i,j : 1≤i≤8 ∧ 1≤j≤5 ∧ x = 6i+9j−7) are
//! > all numbers between 8 and 86 (inclusive) that have remainder 2
//! > when divided by 3, except for 11 and 83.
//!
//! Stride format:  x=8  ∨  (14 ≤ x ≤ 80 ∧ 3|(x+1))  ∨  x=86
//! Projected format:  x=8 ∨ (∃a: 5 ≤ a ≤ 27 ∧ x = 3a−1) ∨ x=86

use presburger::prelude::*;
use presburger_arith::Int as BigInt;
use presburger_omega::dnf::{project_wildcards, simplify, SimplifyOptions};
use presburger_omega::eliminate::Shadow;

fn the_set(x: i64) -> bool {
    (8..=86).contains(&x) && x.rem_euclid(3) == 2 && x != 11 && x != 83
}

fn paper_formula(s: &mut Space) -> (Formula, VarId) {
    let x = s.var("x");
    let i = s.var("i");
    let j = s.var("j");
    let f = Formula::exists(
        vec![i, j],
        Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::constant(8)),
            Formula::between(Affine::constant(1), j, Affine::constant(5)),
            Formula::eq(Affine::var(x), Affine::from_terms(&[(i, 6), (j, 9)], -7)),
        ]),
    );
    (f, x)
}

/// The paper's characterization of the projection is correct (sanity
/// check of the transcription).
#[test]
fn paper_characterization_matches_enumeration() {
    let mut touched = std::collections::BTreeSet::new();
    for i in 1..=8i64 {
        for j in 1..=5i64 {
            touched.insert(6 * i + 9 * j - 7);
        }
    }
    for x in 0..=100i64 {
        assert_eq!(touched.contains(&x), the_set(x), "x={x}");
    }
}

/// Simplifying the formula projects the wildcards exactly.
#[test]
fn projection_is_exact() {
    let mut s = Space::new();
    let (f, _x) = paper_formula(&mut s);
    let d = simplify(&f, &mut s, &SimplifyOptions::default());
    for xv in 0..=100i64 {
        assert_eq!(
            d.contains_point(&s, &|_| BigInt::from(xv)),
            the_set(xv),
            "x={xv}"
        );
    }
}

/// The disjoint version is exact AND single-covering.
#[test]
fn disjoint_projection_is_exact_and_single() {
    let mut s = Space::new();
    let (f, x) = paper_formula(&mut s);
    let d = simplify(&f, &mut s, &SimplifyOptions::disjoint());
    for xv in 0..=100i64 {
        let hits = d.multiplicity(&s, &|_| BigInt::from(xv));
        assert_eq!(hits > 0, the_set(xv), "x={xv}");
        assert!(hits <= 1, "x={xv} covered {hits} times");
    }
    let _ = x;
}

/// Converting projected format to stride format with
/// `project_wildcards`: the result clauses carry stride constraints
/// (the `3|(x+1)`-style middle clause) and no residual wildcards
/// outside strides.
#[test]
fn stride_format_conversion() {
    let mut s = Space::new();
    let (f, x) = paper_formula(&mut s);
    let d = simplify(&f, &mut s, &SimplifyOptions::default());
    let mut all_stride_form = Vec::new();
    for clause in &d.clauses {
        all_stride_form.extend(project_wildcards(clause, &mut s, Shadow::ExactOverlapping));
    }
    // no clause mentions a wildcard outside stride implicit quantifiers
    for c in &all_stride_form {
        let mentioned = c.mentioned_vars();
        for w in c.wildcards() {
            assert!(
                !mentioned.contains(w),
                "wildcard {} escaped: {}",
                s.name(*w),
                c.to_string(&s)
            );
        }
    }
    // the union is still exactly the set
    for xv in 0..=100i64 {
        let got = all_stride_form
            .iter()
            .any(|c| c.contains_point(&s, &|_| BigInt::from(xv)));
        assert_eq!(got, the_set(xv), "x={xv}");
    }
    // and at least one clause uses a stride (the non-convex middle part)
    assert!(
        all_stride_form.iter().any(|c| !c.strides().is_empty()),
        "expected a stride-format clause"
    );
    let _ = x;
}

/// Round-trip: stride format → formula → simplify → same set.
#[test]
fn stride_format_roundtrip() {
    let mut s = Space::new();
    let (f, _x) = paper_formula(&mut s);
    let d = simplify(&f, &mut s, &SimplifyOptions::default());
    let mut clauses = Vec::new();
    for clause in &d.clauses {
        clauses.extend(project_wildcards(clause, &mut s, Shadow::ExactOverlapping));
    }
    let rebuilt = Formula::or(clauses.iter().map(|c| c.to_formula()).collect());
    let d2 = simplify(&rebuilt, &mut s, &SimplifyOptions::default());
    for xv in 0..=100i64 {
        assert_eq!(
            d2.contains_point(&s, &|_| BigInt::from(xv)),
            the_set(xv),
            "x={xv}"
        );
    }
}

/// Counting through the projected representation gives the paper's 25.
#[test]
fn count_is_25() {
    let mut s = Space::new();
    let (f, x) = paper_formula(&mut s);
    let c = count_solutions(&s, &f, &[x]);
    assert_eq!(c.eval_i64(&[]), Some(25));
    // cross-check the characterization: |{8} ∪ {14..80 ≡2 mod 3} ∪ {86}|
    let brute = (0..=100i64).filter(|&v| the_set(v)).count() as i64;
    assert_eq!(brute, 25);
}
