//! End-to-end reproduction of every worked example in the paper,
//! through the public facade API.

use presburger::prelude::*;
use presburger_apps::{distinct_cache_lines, distinct_locations, ArrayRef, LoopNest};
use presburger_counting::try_count_solutions;

/// §1 table: the four introductory sums.
#[test]
fn intro_table() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.symbol("n");

    let c = count_solutions(
        &s,
        &Formula::between(Affine::constant(1), i, Affine::constant(10)),
        &[i],
    );
    assert_eq!(c.eval_i64(&[]), Some(10));

    let c = count_solutions(
        &s,
        &Formula::between(Affine::constant(1), i, Affine::var(n)),
        &[i],
    );
    for nv in -3i64..=9 {
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(nv.max(0)), "n={nv}");
    }

    let square = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::constant(1), j, Affine::var(n)),
    ]);
    let c = count_solutions(&s, &square, &[i, j]);
    for nv in -2i64..=9 {
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(nv.max(0).pow(2)), "n={nv}");
    }

    let strict = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::lt(Affine::var(i), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
    ]);
    let c = count_solutions(&s, &strict, &[i, j]);
    for nv in -2i64..=9 {
        let expect = if nv >= 2 { nv * (nv - 1) / 2 } else { 0 };
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(expect), "n={nv}");
    }
}

/// §1: the piecewise answer the naive CAS misses.
#[test]
fn intro_piecewise_vs_mathematica() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.symbol("n");
    let m = s.symbol("m");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::var(i), j, Affine::var(m)),
    ]);
    let c = count_solutions(&s, &f, &[i, j]);
    // 1 ≤ n ≤ m region: n(2m − n + 1)/2
    for nv in 1i64..=6 {
        for mv in nv..=8 {
            assert_eq!(
                c.eval_i64(&[("n", nv), ("m", mv)]),
                Some(nv * (2 * mv - nv + 1) / 2),
                "n={nv} m={mv}"
            );
        }
    }
    // 1 ≤ m < n region: m(m+1)/2 — where Mathematica's answer is wrong
    for mv in 1i64..=6 {
        for nv in mv + 1..=8 {
            assert_eq!(
                c.eval_i64(&[("n", nv), ("m", mv)]),
                Some(mv * (mv + 1) / 2),
                "n={nv} m={mv}"
            );
        }
    }
}

/// §6 Example 1 (Tawbi): the piecewise cubic, with only 2 pieces.
#[test]
fn example1() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let k = s.var("k");
    let n = s.symbol("n");
    let m = s.symbol("m");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::constant(1), j, Affine::var(i)),
        Formula::between(Affine::var(j), k, Affine::var(m)),
    ]);
    let c = count_solutions(&s, &f, &[i, j, k]);
    assert_eq!(c.num_pieces(), 2, "free order needs only 2 terms");
    for nv in 0i64..=7 {
        for mv in 0i64..=7 {
            let mut brute = 0i64;
            for iv in 1..=nv {
                for jv in 1..=iv {
                    brute += (jv..=mv).count() as i64;
                }
            }
            assert_eq!(
                c.eval_i64(&[("n", nv), ("m", mv)]),
                Some(brute),
                "n={nv} m={mv}"
            );
        }
    }
}

/// §6 Example 2 (HP): 6n − 16 for n > 5.
#[test]
fn example2() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let k = s.var("k");
    let n = s.symbol("n");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::constant(3), j, Affine::var(i)),
        Formula::between(Affine::var(j), k, Affine::constant(5)),
    ]);
    let c = count_solutions(&s, &f, &[i, j, k]);
    for nv in 6i64..=15 {
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(6 * nv - 16), "n={nv}");
    }
    // the small region 3 ≤ n < 5 simplifies to 5n − 12 per the paper
    for nv in 3i64..5 {
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(5 * nv - 12), "n={nv}");
    }
    assert_eq!(c.eval_i64(&[("n", 2)]), Some(0));
}

/// §6 Example 3 (HP): n².
#[test]
fn example3() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.symbol("n");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::term(n, 2)),
        Formula::between(Affine::constant(1), j, Affine::var(i)),
        Formula::le(Affine::var(i) + Affine::var(j), Affine::term(n, 2)),
    ]);
    let c = count_solutions(&s, &f, &[i, j]);
    for nv in 0i64..=9 {
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(nv.max(0).pow(2)), "n={nv}");
    }
}

/// §6 Example 4 (FST): 25 locations of a(6i+9j−7).
#[test]
fn example4() {
    let mut s = Space::new();
    let x = s.var("x");
    let i = s.var("i");
    let j = s.var("j");
    let f = Formula::exists(
        vec![i, j],
        Formula::and(vec![
            Formula::between(Affine::constant(1), i, Affine::constant(8)),
            Formula::between(Affine::constant(1), j, Affine::constant(5)),
            Formula::eq(Affine::var(x), Affine::from_terms(&[(i, 6), (j, 9)], -7)),
        ]),
    );
    let c = count_solutions(&s, &f, &[x]);
    assert_eq!(c.eval_i64(&[]), Some(25));
}

/// §6 Example 5: SOR — 249 996 locations and 16 000 cache lines at
/// N = 500; N² − 4 symbolically.
#[test]
fn example5() {
    let mut nest = LoopNest::new();
    let n = nest.symbol("N");
    let i = nest.add_loop(
        "i",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let j = nest.add_loop(
        "j",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let at = |di: i64, dj: i64| {
        ArrayRef::new(
            "a",
            vec![
                Affine::var(i) + Affine::constant(di),
                Affine::var(j) + Affine::constant(dj),
            ],
        )
    };
    let refs = vec![at(0, 0), at(-1, 0), at(1, 0), at(0, -1), at(0, 1)];
    let loc = distinct_locations(&nest, &refs);
    assert_eq!(loc.eval_i64(&[("N", 500)]), Some(249_996));
    for nv in [3i64, 4, 10, 37] {
        assert_eq!(loc.eval_i64(&[("N", nv)]), Some(nv * nv - 4), "N={nv}");
    }
    let lines = distinct_cache_lines(&nest, &refs, 16);
    assert_eq!(lines.eval_i64(&[("N", 500)]), Some(16_000));
}

/// §6 Example 6: the parity splinter (3n² + 2n − (n mod 2))/4.
#[test]
fn example6() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let n = s.symbol("n");
    let f = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::le(Affine::constant(1), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
        Formula::le(Affine::term(i, 2), Affine::term(j, 3)),
    ]);
    let c = count_solutions(&s, &f, &[i, j]);
    for nv in 1i64..=16 {
        let expect = (3 * nv * nv + 2 * nv - nv.rem_euclid(2)) / 4;
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(expect), "n={nv}");
    }
}

/// §3.1: floors and mods in formulas (through `Desugar`).
#[test]
fn nonlinear_constraints() {
    // count x in [0, n] with x = 3·⌊n/3⌋ − x  (i.e. 2x = 3⌊n/3⌋)
    let mut s = Space::new();
    let x = s.var("x");
    let n = s.symbol("n");
    let mut d = Desugar::new(&mut s);
    let fl = d.floor_div(Affine::var(n), 3);
    let body = Formula::and(vec![
        Formula::between(Affine::constant(0), x, Affine::var(n)),
        Formula::eq(
            Affine::term(x, 2),
            Affine::zero().add_scaled(&fl, &3.into()),
        ),
    ]);
    let f = d.finish(body);
    let c = count_solutions(&s, &f, &[x]);
    for nv in 0i64..=20 {
        let target = 3 * (nv / 3);
        let expect = i64::from(target % 2 == 0 && target / 2 <= nv);
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(expect), "n={nv}");
    }
}

/// Unbounded sums are reported as errors, not wrong answers.
#[test]
fn unbounded_detection() {
    let mut s = Space::new();
    let x = s.var("x");
    let f = Formula::ge(Affine::var(x));
    let r = try_count_solutions(&s, &f, &[x], &CountOptions::default());
    assert!(r.is_err());
}

use presburger_omega::Desugar;
