//! Pins the *shape* of key symbolic answers — not just their values.
//! The paper's contribution is producing readable closed forms; these
//! tests fail if a change makes the engine start emitting needlessly
//! fragmented or bloated answers.

use presburger::prelude::*;
use presburger_apps::{distinct_locations, ArrayRef, LoopNest};
use presburger_arith::Rat;

/// The triangle count must come out as a single clean piece.
#[test]
fn triangle_is_one_piece() {
    let mut s = Space::new();
    let n = s.symbol("n");
    let i = s.var("i");
    let j = s.var("j");
    let f = Formula::and(vec![
        Formula::le(Affine::constant(1), Affine::var(i)),
        Formula::le(Affine::var(i), Affine::var(j)),
        Formula::le(Affine::var(j), Affine::var(n)),
    ]);
    let c = count_solutions(&s, &f, &[i, j]);
    assert_eq!(c.num_pieces(), 1, "{}", c.to_display_string());
    let txt = c.to_display_string();
    assert!(txt.contains("n^2"), "{txt}");
    assert!(!txt.contains("mod"), "no mod terms expected: {txt}");
}

/// SOR's symbolic footprint must compact to exactly one piece, N² − 4.
#[test]
fn sor_footprint_is_one_piece() {
    let mut nest = LoopNest::new();
    let n = nest.symbol("N");
    let i = nest.add_loop(
        "i",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let j = nest.add_loop(
        "j",
        Affine::constant(2),
        Affine::var(n) - Affine::constant(1),
    );
    let at = |di: i64, dj: i64| {
        ArrayRef::new(
            "a",
            vec![
                Affine::var(i) + Affine::constant(di),
                Affine::var(j) + Affine::constant(dj),
            ],
        )
    };
    let refs = vec![at(0, 0), at(-1, 0), at(1, 0), at(0, -1), at(0, 1)];
    let c = distinct_locations(&nest, &refs);
    assert_eq!(c.num_pieces(), 1, "{}", c.to_display_string());
    let txt = c.to_display_string();
    assert!(txt.contains("N^2 - 4"), "{txt}");
}

/// Example 1 must stay at two pieces (the paper's headline comparison
/// with Tawbi's three).
#[test]
fn example1_stays_two_pieces() {
    let mut s = Space::new();
    let i = s.var("i");
    let j = s.var("j");
    let k = s.var("k");
    let n = s.symbol("n");
    let m = s.symbol("m");
    let f = Formula::and(vec![
        Formula::between(Affine::constant(1), i, Affine::var(n)),
        Formula::between(Affine::constant(1), j, Affine::var(i)),
        Formula::between(Affine::var(j), k, Affine::var(m)),
    ]);
    let c = count_solutions(&s, &f, &[i, j, k]);
    assert_eq!(c.num_pieces(), 2, "{}", c.to_display_string());
}

/// Guards come out redundancy-free: the interval count's guard is the
/// single constraint `n ≥ 1`.
#[test]
fn interval_guard_is_minimal() {
    let mut s = Space::new();
    let n = s.symbol("n");
    let x = s.var("x");
    let f = Formula::between(Affine::constant(1), x, Affine::var(n));
    let c = count_solutions(&s, &f, &[x]);
    assert_eq!(c.num_pieces(), 1);
    let piece = &c.value.pieces()[0];
    assert_eq!(
        piece.guard.geqs().len() + piece.guard.eqs().len() + piece.guard.strides().len(),
        1,
        "guard should be exactly one constraint: {}",
        piece.guard.to_string(&c.space)
    );
}

/// Symbolic arithmetic: footprints of two arrays combine.
#[test]
fn symbolic_addition_and_scaling() {
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
    let a = distinct_locations(&nest, &[ArrayRef::new("a", vec![Affine::var(i)])]);
    let b = distinct_locations(&nest, &[ArrayRef::new("b", vec![Affine::term(i, 2)])]);
    let both = a.add(&b);
    for nv in 0i64..=9 {
        assert_eq!(both.eval_i64(&[("n", nv)]), Some(2 * nv.max(0)), "n={nv}");
    }
    // 8 bytes per element
    let bytes = both.scale(&Rat::from(8));
    assert_eq!(bytes.eval_i64(&[("n", 10)]), Some(160));
}
