//! The generative differential-testing gate (see `crates/gen`).
//!
//! Every generated case runs through four oracle/metamorphic families:
//! brute-force enumeration, inclusion–exclusion + invariances,
//! thread-determinism + governed bracketing, and baseline (Tawbi / HP)
//! sanity. Failures are delta-debugged to a minimal counterexample
//! before being reported.
//!
//! Knobs:
//!
//! * `PRESBURGER_GEN_SEED=<n>`  — base seed (printed on failure).
//! * `PRESBURGER_GEN_CASES=<n>` — generated cases per run.
//! * `PRESBURGER_GEN_FAULT=count_off_by_one|miscount_stride` — arm a
//!   deliberate engine-side bug; the run then *asserts the harness
//!   catches it* and shrinks it to ≤ 3 constraints (`scripts/check.sh`
//!   exercises both faults).

use presburger::gen::{
    cases_from_env, check_case, constraint_count, corpus, generate, request_lines, seed_from_env,
    shrink_case, BudgetChoice, GenConfig, Harness, Rng,
};
use presburger::omega::{parse_formula, Space};
use presburger::serve::{parse_request, wire};
use std::path::Path;

/// Cases per run when `PRESBURGER_GEN_CASES` is unset: small enough for
/// the debug-profile tier-1 run; `scripts/check.sh` raises it to 200 in
/// release.
const DEFAULT_CASES: usize = 48;

/// How many candidate evaluations the shrinker may spend per failure.
const SHRINK_BUDGET: usize = 600;

#[test]
fn generated_formulas_agree_with_all_oracles() {
    let seed = seed_from_env();
    let n = cases_from_env(DEFAULT_CASES);
    let h = Harness::from_env();
    let cfg = GenConfig::default();

    let mut caught: Vec<(u64, String)> = Vec::new();
    for i in 0..n as u64 {
        let mut rng = Rng::new(seed).fork(i);
        let case = generate(&mut rng, &cfg);
        let bc = BudgetChoice::draw(&mut rng);
        let Err(failure) = check_case(&case, &h, &bc) else {
            continue;
        };

        // Shrink while the *same* failure kind reproduces, so the
        // minimized case demonstrates the original disagreement.
        let (family, kind) = (failure.family, failure.kind);
        let mut checks = 0usize;
        let shrunk = shrink_case(
            &case,
            &mut |c| {
                checks += 1;
                checks <= SHRINK_BUDGET
                    && matches!(check_case(c, &h, &bc),
                                Err(f) if f.family == family && f.kind == kind)
            },
            SHRINK_BUDGET,
        );
        let atoms = constraint_count(&shrunk);
        let report = format!(
            "case {i} (PRESBURGER_GEN_SEED={seed}): {failure}\n\
             shrunk to {atoms} constraint(s):\n{}",
            shrunk.describe()
        );

        if h.fault.is_some() {
            assert!(
                atoms <= 3,
                "injected fault not minimal: shrunk to {atoms} > 3 constraints\n{report}"
            );
            caught.push((i, report));
        } else {
            panic!("differential failure:\n{report}");
        }
    }

    if h.fault.is_some() {
        assert!(
            !caught.is_empty(),
            "PRESBURGER_GEN_FAULT armed but {n} cases all passed — the harness is blind"
        );
        println!(
            "injected fault caught and shrunk on {} of {n} cases; first:\n{}",
            caught.len(),
            caught[0].1
        );
    }
}

/// Replays the persistent seed corpus (`tests/corpus/*.pres`). Always
/// runs clean (no injected fault): the corpus pins past failures and
/// representative regressions as must-pass cases.
#[test]
fn corpus_replay() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("loading tests/corpus");
    assert!(
        cases.len() >= 3,
        "seed corpus shrank below 3 cases ({} found in {})",
        cases.len(),
        dir.display()
    );

    let h = Harness::default(); // fault-free by construction
    for entry in &cases {
        let case = entry
            .to_case()
            .unwrap_or_else(|e| panic!("corpus case {}: {e}", entry.name));
        // Budgets drawn from the case name keep replay deterministic
        // yet varied across the corpus.
        let mut rng = Rng::from_name(&entry.name);
        let bc = BudgetChoice::draw(&mut rng);
        if let Err(f) = check_case(&case, &h, &bc) {
            panic!("corpus case {} failed: {f}", entry.name);
        }
    }
    println!("replayed {} corpus cases", cases.len());
}

/// The parser must be total on *any* byte sequence: every corpus
/// formula truncated at every char boundary, splice-mutated with
/// operator/keyword junk, and prefixed into garbage must come back
/// `Ok` or a structured `ParseFormulaError` (with a line/column the
/// caret renderer can point at) — never a panic. This is the
/// integration-level companion of the in-crate
/// `parse::tests::arbitrary_bytes_never_panic`.
#[test]
fn corpus_mutations_never_panic_the_parser() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("loading tests/corpus");
    const JUNK: [&str; 10] = [
        "",
        "|",
        "||",
        "&& exists",
        "<=",
        "9999999999999999999999",
        ")",
        "(",
        "\n\n|",
        "\u{fffd}",
    ];

    let mut attempts = 0u64;
    for entry in &cases {
        let text = &entry.text;
        let mut probe = |input: &str| {
            let mut s = Space::new();
            attempts += 1;
            if let Err(e) = parse_formula(input, &mut s) {
                // Structured, caret-renderable positions: 1-based, and
                // the column must lie inside (or one past) its line.
                assert!(e.line >= 1 && e.column >= 1, "bad position: {e}");
                let line = input.lines().nth(e.line - 1).unwrap_or("");
                assert!(
                    e.column <= line.chars().count() + 1,
                    "column {} beyond line {:?} for input {input:?}",
                    e.column,
                    line
                );
            }
        };
        for cut in 0..=text.len() {
            if text.is_char_boundary(cut) {
                probe(&text[..cut]);
                for junk in JUNK {
                    probe(&format!("{}{junk}{}", &text[..cut], &text[cut..]));
                }
            }
        }
        probe(&format!("count {{ x : {text}"));
        probe(&text.replace("&&", "||").replace(">=", "="));
    }
    println!("parser stayed total over {attempts} mutated corpus inputs");
}

/// The binary wire decoders must be total too: every generated request
/// encoded to a frame, then truncated at every byte and splice-mutated
/// the same way the parser corpus is, must decode or fail with a typed
/// `wire` protocol error — never a panic, never a read past the
/// buffer. This replays the serve-level mutation corpus at the
/// workspace facade, companion to `crates/serve/tests/wire.rs`.
#[test]
fn corpus_mutations_never_panic_the_wire_decoders() {
    let seed = seed_from_env();
    let requests = request_lines(seed ^ 0xB750, 64, &GenConfig::default());
    const SPLICES: [&[u8]; 6] = [
        b"",
        &[0x00],
        &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF],
        &[0x89],
        &[0x80, 0x80, 0x80, 0x80, 0x80, 0x01],
        b"count x {x : 1 <= x}\n",
    ];

    let mut attempts = 0u64;
    let mut probe = |buf: &[u8], what: &str| {
        attempts += 1;
        match wire::decode_wire_request(buf) {
            Ok((_, used)) => assert!(used <= buf.len(), "{what}: request over-read"),
            Err(e) => assert_eq!(e.kind, "wire", "{what}: untyped request error"),
        }
        match wire::Reply::decode(buf) {
            Ok((_, used)) => assert!(used <= buf.len(), "{what}: reply over-read"),
            Err(e) => assert_eq!(e.kind, "wire", "{what}: untyped reply error"),
        }
    };
    for r in &requests {
        let req = parse_request(&r.line).expect("generated lines parse");
        let frame = wire::encode_request(&req);
        for cut in 0..=frame.len() {
            probe(&frame[..cut], "truncation");
            for junk in SPLICES {
                let mut spliced = Vec::with_capacity(frame.len() + junk.len());
                spliced.extend_from_slice(&frame[..cut]);
                spliced.extend_from_slice(junk);
                spliced.extend_from_slice(&frame[cut..]);
                probe(&spliced, "splice");
            }
        }
    }
    println!("wire decoders stayed total over {attempts} mutated frames");
}
