//! Asserts the paper's *counter-based* claims straight from the
//! pipeline's own instrumentation (`presburger::trace`), instead of
//! re-deriving them from output shapes:
//!
//! * §6 Example 1 — the free-order engine sums 2 convex pieces where
//!   Tawbi's fixed order needs 3;
//! * §5.2 — exact elimination generates splinters plus a dark-shadow
//!   clause; the paper's dark shadow is `5 ≤ α ≤ 25` (this
//!   implementation derives the sound, slightly wider `5 ≤ α ≤ 27` —
//!   see EXPERIMENTS.md);
//! * §4.5.1 — inclusion–exclusion performs `2^k − 1` summations where
//!   the disjoint-DNF pass needs one query.

use presburger::prelude::*;
use presburger::trace::{self, Counter, PipelineStats};
use presburger_apps::{distinct_locations, ArrayRef, LoopNest};
use presburger_baselines::{fst_locations, tawbi_sum};
use presburger_omega::eliminate::{eliminate, Shadow};
use presburger_omega::Conjunct;

/// Runs `f` with counters on and returns the counter delta it caused.
fn metered<T>(f: impl FnOnce() -> T) -> (T, PipelineStats) {
    trace::enable_counters(true);
    let before = trace::snapshot();
    let out = f();
    let delta = trace::snapshot().delta(&before);
    trace::enable_counters(false);
    (out, delta)
}

/// §6 Example 1 (from [Taw94]): 1 ≤ i ≤ n ∧ 1 ≤ j ≤ i ∧ j ≤ k ≤ m.
fn example1(s: &mut Space) -> (Conjunct, [VarId; 3]) {
    let i = s.var("i");
    let j = s.var("j");
    let k = s.var("k");
    let n = s.var("n");
    let m = s.var("m");
    let mut c = Conjunct::new();
    c.add_geq(Affine::from_terms(&[(i, 1)], -1));
    c.add_geq(Affine::from_terms(&[(n, 1), (i, -1)], 0));
    c.add_geq(Affine::from_terms(&[(j, 1)], -1));
    c.add_geq(Affine::from_terms(&[(i, 1), (j, -1)], 0));
    c.add_geq(Affine::from_terms(&[(k, 1), (j, -1)], 0));
    c.add_geq(Affine::from_terms(&[(m, 1), (k, -1)], 0));
    (c, [i, j, k])
}

#[test]
fn e4_free_order_beats_tawbi_by_counters() {
    let mut s = Space::new();
    let (c, [i, j, k]) = example1(&mut s);

    let (_, ours) = metered(|| {
        presburger_counting::try_count_solutions(
            &s,
            &c.to_formula(),
            &[i, j, k],
            &CountOptions::default(),
        )
        .expect("countable")
    });
    // The paper: "we only need to consider two separate cases" (§6).
    assert_eq!(ours.get(Counter::ConvexLeafPieces), 2, "{ours}");
    assert_eq!(ours.get(Counter::TawbiSplits), 0, "{ours}");

    let (_, tawbi) = metered(|| {
        let mut s2 = s.clone();
        tawbi_sum(&c, &[k, j, i], &QPoly::one(), &mut s2)
    });
    // Tawbi's fixed innermost-first order splits into three.
    assert_eq!(tawbi.get(Counter::TawbiSplits), 3, "{tawbi}");
}

/// The §5.2 system: 0 ≤ 3β − α ≤ 7 ∧ 1 ≤ α − 2β ≤ 5.
fn section52_system(s: &mut Space) -> (Conjunct, VarId) {
    let alpha = s.var("alpha");
    let beta = s.var("beta");
    let mut c = Conjunct::new();
    c.add_geq(Affine::from_terms(&[(beta, 3), (alpha, -1)], 0));
    c.add_geq(Affine::from_terms(&[(beta, -3), (alpha, 1)], 7));
    c.add_geq(Affine::from_terms(&[(alpha, 1), (beta, -2)], -1));
    c.add_geq(Affine::from_terms(&[(alpha, -1), (beta, 2)], 5));
    (c, beta)
}

#[test]
fn e11_splinter_counters_match_the_mechanics() {
    let mut s = Space::new();
    let (c, beta) = section52_system(&mut s);

    let (overlapping, ovl) = metered(|| eliminate(&c, beta, &mut s, Shadow::ExactOverlapping));
    assert_eq!(ovl.get(Counter::EliminateExactOverlapping), 1, "{ovl}");
    // One dark-shadow clause plus splinters. The paper's worked example
    // (§5.2) quotes dark shadow 5 ≤ α ≤ 25, but the pairwise condition
    // bU − aL ≥ (a−1)(b−1) applied to β's bounds
    //   3β ≥ α, 3β ≤ α+7, 2β ≥ α−5, 2β ≤ α−1
    // gives exactly:
    //   (b=3, a=2): 3(α−1) − 2α = α−3 ≥ 2      ⇒ α ≥ 5
    //   (b=2, a=3): 2(α+7) − 3(α−5) = 29−α ≥ 2 ⇒ α ≤ 27
    // (the other two pairs hold unconditionally), so the dark shadow is
    // 5 ≤ α ≤ 27 — and it is genuinely inhabited at the top: α = 26 and
    // α = 27 are both satisfied by β = 11 (3·11−26 = 7 ∈ [0,7],
    // 26−22 = 4 ∈ [1,5]; and 3·11−27 = 6, 27−22 = 5). The exact
    // projection is {3} ∪ [5,27] ∪ {29}, so the paper's 25 under-claims
    // the dark shadow; ours is the tight pairwise bound. Our splinter
    // bound `top = ((b−1)(a−1) − 1) / a` generates 3 per-lower-bound
    // candidates here (none pruned).
    assert_eq!(ovl.get(Counter::DarkShadowClauses), 1, "{ovl}");
    assert_eq!(ovl.get(Counter::SplintersGenerated), 3, "{ovl}");
    assert_eq!(
        overlapping.clauses.len() as u64,
        1 + ovl.get(Counter::SplintersGenerated) - ovl.get(Counter::SplintersPruned),
        "clauses = dark shadow + surviving splinters"
    );

    let (disjoint, dis) = metered(|| eliminate(&c, beta, &mut s, Shadow::ExactDisjoint));
    assert_eq!(dis.get(Counter::EliminateExactDisjoint), 1, "{dis}");
    assert_eq!(dis.get(Counter::DarkShadowClauses), 1, "{dis}");
    assert_eq!(
        disjoint.clauses.len() as u64,
        1 + dis.get(Counter::SplintersGenerated) - dis.get(Counter::SplintersPruned),
        "clauses = dark shadow + surviving splinters"
    );
    // Disjointness costs more splinter candidates than the overlapping
    // mode; pruning discards the infeasible ones.
    assert!(
        dis.get(Counter::SplintersGenerated) > ovl.get(Counter::SplintersGenerated),
        "{dis}"
    );
    assert!(dis.get(Counter::SplintersPruned) > 0, "{dis}");

    // Per the derivation above the dark shadow is exactly 5 ≤ α ≤ 27
    // (the paper's quoted 5 ≤ α ≤ 25 under-claims it): the first clause
    // must contain all of α = 5..=27 — including 26 and 27, which have
    // the witness β = 11 — and exclude 4 and 28.
    let dark = &overlapping.clauses[0];
    for av in 5..=27i64 {
        assert!(
            dark.contains_point(&s, &|_| Int::from(av)),
            "dark shadow should contain α = {av}"
        );
    }
    for av in [4i64, 28] {
        assert!(
            !dark.contains_point(&s, &|_| Int::from(av)),
            "dark shadow should not contain α = {av}"
        );
    }
}

#[test]
fn a3_inclusion_exclusion_counter_grows_exponentially() {
    for k in 2..=5usize {
        let mut nest = LoopNest::new();
        let n = nest.symbol("N");
        let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
        let refs: Vec<ArrayRef> = (0..k as i64)
            .map(|o| ArrayRef::new("a", vec![Affine::var(i) + Affine::constant(o)]))
            .collect();

        let (_, fst) = metered(|| fst_locations(&nest, &refs, k));
        assert_eq!(
            fst.get(Counter::FstSummations),
            (1 << k) - 1,
            "k={k}: inclusion–exclusion needs 2^k − 1 summations\n{fst}"
        );

        let (_, ours) = metered(|| distinct_locations(&nest, &refs));
        assert_eq!(ours.get(Counter::FstSummations), 0, "k={k}: {ours}");
        // The disjoint-DNF path scales linearly: the k overlapping
        // footprints become at most k disjoint clauses, each summed
        // into one leaf piece.
        assert!(
            ours.get(Counter::DnfClausesDisjoint) <= k as u64,
            "k={k}: {ours}"
        );
        assert!(
            ours.get(Counter::ConvexLeafPieces) <= k as u64,
            "k={k}: {ours}"
        );
    }
}

#[test]
fn disabled_counters_stay_zero() {
    trace::enable_counters(false);
    trace::reset();
    let mut s = Space::new();
    let i = s.var("i");
    let n = s.var("n");
    let f = Formula::between(Affine::constant(1), i, Affine::var(n));
    let _ = count_solutions(&s, &f, &[i]);
    assert!(trace::snapshot().is_empty());
}

#[test]
fn facade_stats_roundtrip() {
    presburger::enable_stats(true);
    presburger::reset_stats();
    let mut s = Space::new();
    let i = s.var("i");
    let n = s.var("n");
    let f = Formula::between(Affine::constant(1), i, Affine::var(n));
    let _ = count_solutions(&s, &f, &[i]);
    let stats = presburger::stats();
    assert!(stats.get(Counter::ConvexLeafPieces) >= 1, "{stats}");
    assert!(stats.get(Counter::FeasibilityChecks) >= 1, "{stats}");
    let js = stats.to_json();
    assert!(js.contains("\"convex_leaf_pieces\""), "{js}");
    presburger::enable_stats(false);
    presburger::reset_stats();
}
