//! End-to-end application scenarios (§1.1): execution-time estimation,
//! flop counting, memory/cache analysis, load balance, and HPF
//! communication — the "why" of the paper, exercised through the
//! public API.

use presburger_apps::{
    distinct_cache_lines, distinct_locations, group_uniformly_generated, work_profile, ArrayRef,
    BlockCyclic, LoopNest,
};
use presburger_omega::{Affine, Formula};
use presburger_polyq::QPoly;

/// Matrix-multiply: execution time and flops.
#[test]
fn matmul_iteration_and_flops() {
    // for i = 1..n { for j = 1..n { for k = 1..n { c[i,j] += a[i,k]*b[k,j] } } }
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let _i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
    let _j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
    let _k = nest.add_loop("k", Affine::constant(1), Affine::var(n));
    let iters = nest.iteration_count();
    assert_eq!(iters.eval_i64(&[("n", 20)]), Some(8000));
    // 2 flops per iteration
    let flops = nest.sum(&QPoly::constant(presburger_arith::Rat::from(2)));
    assert_eq!(flops.eval_i64(&[("n", 20)]), Some(16_000));
}

/// Computation/memory balance of matmul: n³ multiply-adds over 3n²
/// matrix elements.
#[test]
fn matmul_memory_balance() {
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
    let j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
    let k = nest.add_loop("k", Affine::constant(1), Affine::var(n));
    // locations of a touched: a[i,k]
    let a_locs = distinct_locations(
        &nest,
        &[ArrayRef::new("a", vec![Affine::var(i), Affine::var(k)])],
    );
    // b[k,j]
    let b_locs = distinct_locations(
        &nest,
        &[ArrayRef::new("b", vec![Affine::var(k), Affine::var(j)])],
    );
    for nv in [4i64, 9, 25] {
        assert_eq!(a_locs.eval_i64(&[("n", nv)]), Some(nv * nv));
        assert_eq!(b_locs.eval_i64(&[("n", nv)]), Some(nv * nv));
    }
}

/// A skewed stencil loop: uniformly generated grouping keeps the
/// formula small, and the count matches the naive union.
#[test]
fn skewed_stencil_footprint() {
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
    let j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
    // a[i+j], a[i+j+1], a[i+j+2] — 1-D uniformly generated set
    let refs: Vec<ArrayRef> = (0..3)
        .map(|o| {
            ArrayRef::new(
                "a",
                vec![Affine::var(i) + Affine::var(j) + Affine::constant(o)],
            )
        })
        .collect();
    let groups = group_uniformly_generated(&refs);
    assert_eq!(groups.len(), 1);
    let c = distinct_locations(&nest, &refs);
    for nv in 0i64..=9 {
        // touched: 2..=2n+2 when n >= 1
        let expect = if nv >= 1 { 2 * nv + 1 } else { 0 };
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(expect), "n={nv}");
    }
}

/// Strided loops interact with cache-line counting.
#[test]
fn strided_access_cache_lines() {
    // for i = 1..n step 2 { touch a[i] } with 4-element lines
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let i = nest.add_loop_strided("i", Affine::constant(1), Affine::var(n), 2);
    let refs = vec![ArrayRef::new("a", vec![Affine::var(i)])];
    let lines = distinct_cache_lines(&nest, &refs, 4);
    for nv in 0i64..=20 {
        let mut expect = std::collections::BTreeSet::new();
        let mut iv = 1;
        while iv <= nv {
            expect.insert((iv - 1) / 4);
            iv += 2;
        }
        assert_eq!(
            lines.eval_i64(&[("n", nv)]),
            Some(expect.len() as i64),
            "n={nv}"
        );
    }
}

/// Guarded (trapezoidal) nest load balance.
#[test]
fn trapezoid_load_balance() {
    // forall i = 1..n { for j = 1..n { if j <= i + 2 {…} } }
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let i = nest.add_loop("i", Affine::constant(1), Affine::var(n));
    let j = nest.add_loop("j", Affine::constant(1), Affine::var(n));
    nest.guard(Formula::le(
        Affine::var(j),
        Affine::var(i) + Affine::constant(2),
    ));
    let wp = work_profile(&nest, i);
    assert!(!wp.is_balanced());
    // work(i) = min(n, i+2)
    for iv in 1i64..=10 {
        assert_eq!(wp.work_at(iv, &[("n", 10)]), (iv + 2).min(10), "i={iv}");
    }
    // chunks cover and roughly balance
    let chunks = wp.balanced_chunks(1, 50, 5, &[("n", 50)]);
    assert_eq!(chunks.len(), 5);
    assert_eq!(chunks[0].0, 1);
    assert_eq!(chunks.last().unwrap().1, 50);
}

/// HPF: round-trip between the symbolic ownership count and the
/// concrete owner function across distributions.
#[test]
fn hpf_ownership_crosscheck() {
    for (procs, block) in [(2i64, 1i64), (3, 2), (4, 4), (5, 3)] {
        let d = BlockCyclic::new(procs, block);
        let mut s = presburger_omega::Space::new();
        let p = s.var("p");
        let count = d.elements_on_processor(&s, Affine::constant(0), Affine::constant(59), p);
        for pv in 0..procs {
            let brute = (0..=59).filter(|&t| d.owner(t) == pv).count() as i64;
            assert_eq!(
                count.eval_i64(&[("p", pv)]),
                Some(brute),
                "procs={procs} block={block} p={pv}"
            );
        }
    }
}

/// Imperfect information: a loop nest whose inner bound comes from a
/// floor (blocking/tiling idiom).
#[test]
fn tiled_loop_iteration_count() {
    // for t = 0..⌊(n−1)/4⌋ { for i = 4t+1..min(4t+4, n) } — tiling by 4
    let mut nest = LoopNest::new();
    let n = nest.symbol("n");
    let t = nest.add_loop("t", Affine::constant(0), Affine::var(n)); // loose upper; guard below
    let i = nest.add_loop(
        "i",
        Affine::term(t, 4) + Affine::constant(1),
        Affine::var(n),
    );
    nest.also_upper(Affine::term(t, 4) + Affine::constant(4));
    nest.guard(Formula::le(
        Affine::term(t, 4) + Affine::constant(1),
        Affine::var(n),
    ));
    let c = nest.iteration_count();
    // every i in 1..=n is visited exactly once
    for nv in 0i64..=25 {
        assert_eq!(c.eval_i64(&[("n", nv)]), Some(nv.max(0)), "n={nv}");
    }
    let _ = i;
}
