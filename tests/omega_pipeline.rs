//! Cross-crate properties of the Omega-test pipeline: exactness of
//! elimination, disjointness of disjoint DNF, and the gist/implication
//! algebra — on randomized inputs.

use presburger::prelude::*;
use presburger_arith::Int as BigInt;
use presburger_omega::dnf::{simplify, SimplifyOptions};
use presburger_omega::eliminate::{eliminate, Shadow};
use presburger_omega::redundant::{gist, implies};
use presburger_omega::{Conjunct, Space};
use proptest::prelude::*;

fn conjunct_2d(s: &mut Space, atoms: &[(i64, i64, i64)]) -> (Conjunct, VarId, VarId) {
    let x = s.var("x");
    let y = s.var("y");
    let mut c = Conjunct::new();
    // keep things bounded
    c.add_geq(Affine::from_terms(&[(x, 1)], 8));
    c.add_geq(Affine::from_terms(&[(x, -1)], 8));
    c.add_geq(Affine::from_terms(&[(y, 1)], 8));
    c.add_geq(Affine::from_terms(&[(y, -1)], 8));
    for &(a, b, k) in atoms {
        c.add_geq(Affine::from_terms(&[(x, a), (y, b)], k));
    }
    (c, x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Exact elimination preserves the integer projection, in both
    /// splintering modes; the disjoint mode never double-covers.
    #[test]
    fn elimination_exactness(atoms in proptest::collection::vec(
        (-4i64..=4, -4i64..=4, -8i64..=8), 1..4))
    {
        let mut s = Space::new();
        let (c, x, y) = conjunct_2d(&mut s, &atoms);
        for mode in [Shadow::ExactOverlapping, Shadow::ExactDisjoint] {
            let r = eliminate(&c, y, &mut s, mode);
            prop_assert!(r.exact);
            for xv in -9i64..=9 {
                let assign = |v: VarId| {
                    assert_eq!(v, x);
                    BigInt::from(xv)
                };
                let truth = (-9i64..=9).any(|yv| {
                    c.contains_point(&s, &|v| if v == x { BigInt::from(xv) } else { BigInt::from(yv) })
                });
                let hits = r.clauses.iter()
                    .filter(|cl| cl.contains_point(&s, &assign))
                    .count();
                prop_assert_eq!(hits > 0, truth, "mode {:?} x={}", mode, xv);
                if mode == Shadow::ExactDisjoint {
                    prop_assert!(hits <= 1, "overlap at x={}", xv);
                }
            }
        }
    }

    /// Real and dark shadows bracket the projection.
    #[test]
    fn shadows_bracket(atoms in proptest::collection::vec(
        (-4i64..=4, -4i64..=4, -8i64..=8), 1..4))
    {
        let mut s = Space::new();
        let (c, x, y) = conjunct_2d(&mut s, &atoms);
        let real = eliminate(&c, y, &mut s, Shadow::Real);
        let dark = eliminate(&c, y, &mut s, Shadow::Dark);
        for xv in -9i64..=9 {
            let assign = |v: VarId| {
                assert_eq!(v, x);
                BigInt::from(xv)
            };
            let truth = (-9i64..=9).any(|yv| {
                c.contains_point(&s, &|v| if v == x { BigInt::from(xv) } else { BigInt::from(yv) })
            });
            let in_real = real.clauses.iter().any(|cl| cl.contains_point(&s, &assign));
            let in_dark = dark.clauses.iter().any(|cl| cl.contains_point(&s, &assign));
            prop_assert!(!truth || in_real, "real shadow must cover x={}", xv);
            prop_assert!(!in_dark || truth, "dark shadow must be sound at x={}", xv);
        }
    }

    /// Disjoint DNF simplification of random union formulas covers the
    /// same set with multiplicity one.
    #[test]
    fn disjoint_dnf_multiplicity(
        iv0 in -5i64..5, len0 in 0i64..6,
        iv1 in -5i64..5, len1 in 0i64..6,
        stride_m in 2i64..4,
    ) {
        let mut s = Space::new();
        let x = s.var("x");
        let f = Formula::or(vec![
            Formula::between(Affine::constant(iv0), x, Affine::constant(iv0 + len0)),
            Formula::between(Affine::constant(iv1), x, Affine::constant(iv1 + len1)),
            Formula::and(vec![
                Formula::between(Affine::constant(-3), x, Affine::constant(7)),
                Formula::stride(stride_m, Affine::var(x)),
            ]),
        ]);
        let plain = simplify(&f, &mut s, &SimplifyOptions::default());
        let disjoint = simplify(&f, &mut s, &SimplifyOptions::disjoint());
        for xv in -8i64..=10 {
            let assign = |_: VarId| BigInt::from(xv);
            let expected = plain.contains_point(&s, &assign);
            let hits = disjoint.multiplicity(&s, &assign);
            prop_assert_eq!(hits > 0, expected, "coverage at {}", xv);
            prop_assert!(hits <= 1, "multiplicity {} at {}", hits, xv);
        }
    }

    /// gist algebra: (gist P given Q) ∧ Q  ≡  P ∧ Q.
    #[test]
    fn gist_identity(p_atoms in proptest::collection::vec(
        (-3i64..=3, -3i64..=3, -6i64..=6), 1..3),
        q_atoms in proptest::collection::vec(
        (-3i64..=3, -3i64..=3, -6i64..=6), 1..3))
    {
        let mut s = Space::new();
        let (p, x, y) = conjunct_2d(&mut s, &p_atoms);
        let mut q = Conjunct::new();
        for &(a, b, k) in &q_atoms {
            q.add_geq(Affine::from_terms(&[(x, a), (y, b)], k));
        }
        let g = gist(&p, &q, &mut s);
        for xv in -9i64..=9 {
            for yv in -9i64..=9 {
                let assign = |v: VarId| if v == x { BigInt::from(xv) } else { BigInt::from(yv) };
                let lhs = g.contains_point(&s, &assign) && q.contains_point(&s, &assign);
                let rhs = p.contains_point(&s, &assign) && q.contains_point(&s, &assign);
                prop_assert_eq!(lhs, rhs, "x={} y={}", xv, yv);
            }
        }
    }

    /// implies is sound: when it says P ⇒ Q, no counterexample exists.
    #[test]
    fn implication_soundness(p_atoms in proptest::collection::vec(
        (-3i64..=3, -3i64..=3, -6i64..=6), 1..3),
        q_atoms in proptest::collection::vec(
        (-3i64..=3, -3i64..=3, -6i64..=6), 1..2))
    {
        let mut s = Space::new();
        let (p, x, y) = conjunct_2d(&mut s, &p_atoms);
        let mut q = Conjunct::new();
        for &(a, b, k) in &q_atoms {
            q.add_geq(Affine::from_terms(&[(x, a), (y, b)], k));
        }
        if implies(&p, &q, &mut s) {
            for xv in -9i64..=9 {
                for yv in -9i64..=9 {
                    let assign = |v: VarId| if v == x { BigInt::from(xv) } else { BigInt::from(yv) };
                    if p.contains_point(&s, &assign) {
                        prop_assert!(q.contains_point(&s, &assign), "x={} y={}", xv, yv);
                    }
                }
            }
        }
    }
}

/// The complete implication test is also complete on bounded systems:
/// if brute force finds no counterexample inside the (bounding-box
/// constrained) P, `implies` must return true.
#[test]
fn implication_completeness_on_boxes() {
    let mut s = Space::new();
    let x = s.var("x");
    let mut p = Conjunct::new();
    p.add_geq(Affine::from_terms(&[(x, 2)], -3)); // 2x >= 3 → x >= 2
    let mut q = Conjunct::new();
    q.add_geq(Affine::from_terms(&[(x, 1)], -2)); // x >= 2
    assert!(implies(&p, &q, &mut s));
    let mut q2 = Conjunct::new();
    q2.add_geq(Affine::from_terms(&[(x, 1)], -3)); // x >= 3
    assert!(!implies(&p, &q2, &mut s));
}
