//! End-to-end differential smoke of the calculator's `--connect`
//! client mode: the same scripted stdin session, once over the text
//! codec and once over the binary wire codec with batching, against
//! identically-configured shard-pool servers. Stdout must be
//! byte-identical across codecs (modulo `queue_depth_peak`, which is
//! scheduling-dependent: the text client pipelines lines one by one
//! while the binary client admits whole batch frames atomically).

use presburger::counting::Budgets;
use presburger::serve::{PoolTcpServer, ServeConfig, ShardPoolConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// The calculator example binary, built by `cargo test` alongside the
/// test executables (`target/<profile>/examples/calculator`).
fn calculator_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop(); // the test binary's name
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
        .join(format!("calculator{}", std::env::consts::EXE_SUFFIX))
}

fn pool_cfg() -> ShardPoolConfig {
    ShardPoolConfig {
        shards: 2,
        shard_cfg: ServeConfig {
            workers: 1,
            queue_depth: 64,
            default_deadline_ms: None,
            default_budgets: Budgets {
                max_splinters: Some(512),
                max_dnf_clauses: Some(256),
                max_depth: Some(64),
                max_pieces: Some(20_000),
                max_coeff_bits: Some(512),
                ..Budgets::unlimited()
            },
            breaker_failures: 0,
            ..ServeConfig::default()
        },
        probe_interval_ms: 2,
        restart_backoff_ms: 10,
        rescue_after_ms: 60_000,
        ..ShardPoolConfig::default()
    }
}

/// Runs the client against a fresh server and returns its stdout.
fn run_client(script: &str, extra_args: &[&str]) -> String {
    let server = PoolTcpServer::bind("127.0.0.1:0", pool_cfg()).expect("bind loopback");
    let addr = server.addr().to_string();
    let mut cmd = Command::new(calculator_bin());
    cmd.arg("--connect").arg(&addr).args(extra_args);
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn calculator client");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("client exits");
    server.shutdown();
    assert!(
        out.status.success(),
        "client failed ({:?}): {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 replies")
}

/// Masks the one scheduling-dependent stats counter.
fn mask_peak(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for line in s.lines() {
        if let Some(idx) = line.find("queue_depth_peak=") {
            let tail = &line[idx..];
            let end = tail.find(' ').unwrap_or(tail.len());
            out.push_str(&line[..idx]);
            out.push_str("queue_depth_peak=_");
            out.push_str(&tail[end..]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn calculator_client_text_and_binary_agree() {
    let script = "\
ping hello
count c1 {x : 1 <= x <= 9}
count c2 {i,j : 1 <= i <= j <= 4}
sum c3 x {x : 1 <= x <= 4}
count c4 {x : 1 <= x <= n}
count c5 {x : 1 <= x <= 9}
count c6 {x : x >= 0}
drain
";
    let text = run_client(script, &[]);
    let binary = run_client(script, &["--binary", "--batch", "4"]);
    assert!(
        text.contains("OK c1 exact 9") && text.contains("BYE"),
        "unexpected text transcript:\n{text}"
    );
    assert_eq!(
        mask_peak(&text),
        mask_peak(&binary),
        "binary client output drifted from text"
    );

    // EOF (no explicit drain) closes out the connection identically
    // under either codec: all replies delivered, no parting frame.
    let script = "count e1 {x : 1 <= x <= 3}\ncount e2 {x : 1 <= x <= 4}\n";
    let text = run_client(script, &[]);
    let binary = run_client(script, &["--binary", "--batch", "8"]);
    assert!(
        text.contains("OK e1 exact 3") && text.contains("OK e2 exact 4"),
        "unexpected EOF transcript:\n{text}"
    );
    assert_eq!(
        mask_peak(&text),
        mask_peak(&binary),
        "binary client EOF drain drifted from text"
    );
}
