//! Facade crate for the presburger-counting workspace.
//!
//! Re-exports the public API of every sub-crate so that downstream users
//! (and the examples/integration tests in this repository) can depend on
//! a single crate:
//!
//! * [`arith`] — exact integers, rationals, lattice linear algebra;
//! * [`omega`] — the Omega test: simplification, projection, disjoint DNF;
//! * [`polyq`] — quasi-polynomials and guarded piecewise values;
//! * [`counting`] — symbolic counting and summation (the paper's core);
//! * [`apps`] — compiler-analysis applications (loop nests, cache, HPF);
//! * [`baselines`] — the algorithms the paper compares against;
//! * [`gen`] — generative differential testing: random-formula
//!   generation, multi-oracle cross-checks, shrinking, seed corpus;
//! * [`trace`] — zero-dependency observability: pipeline counters,
//!   timing spans, human-readable `explain` derivations, and
//!   request-scoped metrics (log-bucketed histograms with Prometheus
//!   text exposition);
//! * [`serve`] — a hardened request-serving layer: admission control,
//!   load shedding, circuit breaking, result caching, graceful drain,
//!   and per-request telemetry with a slow-request flight recorder.
//!
//! # Quickstart
//!
//! Count the iterations of the triangular loop
//! `for i in 1..=n { for j in i..=n { ... } }` symbolically:
//!
//! ```
//! use presburger::prelude::*;
//!
//! let mut space = Space::new();
//! let n = space.symbol("n");
//! let i = space.var("i");
//! let j = space.var("j");
//! let f = Formula::and(vec![
//!     Formula::ge(Affine::var(i) - Affine::constant(1)),           // 1 <= i
//!     Formula::ge(Affine::var(j) - Affine::var(i)),                // i <= j
//!     Formula::ge(Affine::var(n) - Affine::var(j)),                // j <= n
//! ]);
//! let count = count_solutions(&space, &f, &[i, j]);
//! // n*(n+1)/2 when n >= 1
//! assert_eq!(count.eval_i64(&[("n", 10)]).unwrap(), 55);
//! assert_eq!(count.eval_i64(&[("n", 0)]).unwrap(), 0);
//! ```

pub use presburger_apps as apps;
pub use presburger_arith as arith;
pub use presburger_baselines as baselines;
pub use presburger_counting as counting;
pub use presburger_gen as gen;
pub use presburger_omega as omega;
pub use presburger_polyq as polyq;
pub use presburger_serve as serve;
pub use presburger_trace as trace;

/// Turns pipeline counters on or off for the current thread.
///
/// With counters off (the default) every instrumentation hook in the
/// pipeline is a single thread-local boolean load.
///
/// ```
/// use presburger::prelude::*;
///
/// presburger::enable_stats(true);
/// presburger::reset_stats();
/// let mut space = Space::new();
/// let n = space.symbol("n");
/// let i = space.var("i");
/// let f = Formula::and(vec![
///     Formula::ge(Affine::var(i) - Affine::constant(1)),
///     Formula::ge(Affine::var(n) - Affine::var(i)),
/// ]);
/// let _ = count_solutions(&space, &f, &[i]);
/// let stats = presburger::stats();
/// assert!(stats.get(presburger::trace::Counter::FeasibilityChecks) > 0);
/// presburger::enable_stats(false);
/// ```
pub fn enable_stats(on: bool) {
    presburger_trace::enable_counters(on);
}

/// A snapshot of the pipeline counters accumulated on this thread.
pub fn stats() -> presburger_trace::PipelineStats {
    presburger_trace::snapshot()
}

/// Clears the pipeline counters (and any collected span tree) on this
/// thread.
pub fn reset_stats() {
    presburger_trace::reset();
}

/// Resolves a [`CountOptions`](prelude::CountOptions) `threads` request
/// to a concrete worker count (`0` = one per available core).
///
/// The counting engine drains its clause-task pipeline with this many
/// `std::thread::scope` workers; answers are byte-identical at every
/// setting. The default honours the `PRESBURGER_THREADS` environment
/// variable.
pub fn resolve_threads(requested: usize) -> usize {
    presburger_counting::pipeline::resolve_threads(requested)
}

/// Resource-governed counting: budgets, deadlines, cancellation, and
/// graceful degradation to the paper's §4.6 bounds. See
/// [`counting::govern`] for the full story.
///
/// ```
/// use presburger::prelude::*;
/// use std::time::Duration;
///
/// let mut space = Space::new();
/// let n = space.symbol("n");
/// let i = space.var("i");
/// let f = Formula::and(vec![
///     Formula::ge(Affine::var(i) - Affine::constant(1)),
///     Formula::ge(Affine::var(n) - Affine::var(i)),
/// ]);
/// let gov = Governor::new(Budgets {
///     deadline: Some(Duration::from_secs(5)),
///     ..Budgets::unlimited()
/// });
/// let out =
///     try_count_solutions_governed(&space, &f, &[i], &CountOptions::default(), &gov).unwrap();
/// assert!(out.is_exact());
/// ```
pub use presburger_counting::{
    try_count_solutions_governed, try_sum_polynomial_bounds, try_sum_polynomial_governed, Budgets,
    ClauseStatus, CountError, DegradePolicy, EvalError, Governor, Outcome,
};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use presburger_arith::{Int, Rat};
    pub use presburger_counting::{
        count_solutions, sum_polynomial, try_count_solutions, try_count_solutions_governed,
        try_sum_polynomial_bounds, try_sum_polynomial_governed, Budgets, ClauseStatus, CountError,
        CountOptions, DegradePolicy, EvalError, Governor, Mode, Outcome,
    };
    pub use presburger_omega::{Affine, Constraint, Formula, Space, VarId};
    pub use presburger_polyq::{GuardedValue, QPoly};
}
