//! Facade crate for the presburger-counting workspace.
//!
//! Re-exports the public API of every sub-crate so that downstream users
//! (and the examples/integration tests in this repository) can depend on
//! a single crate:
//!
//! * [`arith`] — exact integers, rationals, lattice linear algebra;
//! * [`omega`] — the Omega test: simplification, projection, disjoint DNF;
//! * [`polyq`] — quasi-polynomials and guarded piecewise values;
//! * [`counting`] — symbolic counting and summation (the paper's core);
//! * [`apps`] — compiler-analysis applications (loop nests, cache, HPF);
//! * [`baselines`] — the algorithms the paper compares against.
//!
//! # Quickstart
//!
//! Count the iterations of the triangular loop
//! `for i in 1..=n { for j in i..=n { ... } }` symbolically:
//!
//! ```
//! use presburger::prelude::*;
//!
//! let mut space = Space::new();
//! let n = space.symbol("n");
//! let i = space.var("i");
//! let j = space.var("j");
//! let f = Formula::and(vec![
//!     Formula::ge(Affine::var(i) - Affine::constant(1)),           // 1 <= i
//!     Formula::ge(Affine::var(j) - Affine::var(i)),                // i <= j
//!     Formula::ge(Affine::var(n) - Affine::var(j)),                // j <= n
//! ]);
//! let count = count_solutions(&space, &f, &[i, j]);
//! // n*(n+1)/2 when n >= 1
//! assert_eq!(count.eval_i64(&[("n", 10)]).unwrap(), 55);
//! assert_eq!(count.eval_i64(&[("n", 0)]).unwrap(), 0);
//! ```

pub use presburger_apps as apps;
pub use presburger_arith as arith;
pub use presburger_baselines as baselines;
pub use presburger_counting as counting;
pub use presburger_omega as omega;
pub use presburger_polyq as polyq;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use presburger_arith::{Int, Rat};
    pub use presburger_counting::{count_solutions, sum_polynomial, CountOptions, Mode};
    pub use presburger_omega::{Affine, Constraint, Formula, Space, VarId};
    pub use presburger_polyq::{GuardedValue, QPoly};
}
